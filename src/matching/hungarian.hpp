// Maximum-weight bipartite matching (Jonker–Volgenant style shortest
// augmenting paths with potentials, O(n^3)).
//
// Powers the SRPT-flavored scheduler (sim/scheduler.hpp): where the plain
// matching schedule maximizes how many flows transmit, the weighted variant
// also chooses *which* — e.g. favoring short remaining flows to cut mean
// FCT, the Sincronia-adjacent policy the paper's R1 discussion gestures at.
#pragma once

#include <cstddef>
#include <vector>

#include "util/check.hpp"

namespace closfair {

/// For a dense non-negative weight matrix (rows x cols), return an
/// assignment row -> column (or kUnassigned) maximizing the total weight.
/// Zero-weight pairs are treated as "no edge": they are never matched.
inline constexpr std::size_t kUnassigned = static_cast<std::size_t>(-1);

[[nodiscard]] std::vector<std::size_t> max_weight_matching(
    const std::vector<std::vector<double>>& weight);

/// Total weight of an assignment (validating shape and uniqueness).
[[nodiscard]] double matching_weight(const std::vector<std::vector<double>>& weight,
                                     const std::vector<std::size_t>& assignment);

}  // namespace closfair
