#include "routing/search_engine.hpp"

#include <algorithm>
#include <numeric>

#include "fault/fault.hpp"
#include "obs/obs.hpp"

namespace closfair {
namespace {

// Saturating n^k.
std::uint64_t sat_pow(std::uint64_t base, std::size_t exp) {
  std::uint64_t result = 1;
  for (std::size_t i = 0; i < exp; ++i) result = detail::sat_mul(result, base);
  return result;
}

}  // namespace

std::uint64_t canonical_class_count(int max_values, std::size_t length) {
  CF_CHECK_MSG(max_values >= 1, "canonical_class_count requires max_values >= 1");
  // dp[k] = number of restricted-growth strings of the current length using
  // exactly k distinct values: dp'[k] = k·dp[k] (reuse a value) + dp[k−1]
  // (open value k). Descending k keeps dp[k−1] from the previous length.
  std::vector<std::uint64_t> dp(static_cast<std::size_t>(max_values) + 1, 0);
  dp[0] = 1;
  for (std::size_t pos = 0; pos < length; ++pos) {
    for (int k = max_values; k >= 1; --k) {
      dp[static_cast<std::size_t>(k)] =
          detail::sat_add(detail::sat_mul(dp[static_cast<std::size_t>(k)],
                                          static_cast<std::uint64_t>(k)),
                          dp[static_cast<std::size_t>(k) - 1]);
    }
    dp[0] = 0;
  }
  std::uint64_t total = length == 0 ? 1 : 0;
  for (int k = 1; k <= max_values; ++k) {
    total = detail::sat_add(total, dp[static_cast<std::size_t>(k)]);
  }
  return total;
}

std::uint64_t orbit_size(int n, int k) {
  CF_CHECK(k >= 0 && k <= n);
  std::uint64_t result = 1;
  for (int i = 0; i < k; ++i) {
    result = detail::sat_mul(result, static_cast<std::uint64_t>(n - i));
  }
  return result;
}

Rational throughput_capacity_bound(const ClosNetwork& net, const FlowSet& flows) {
  const Topology& topo = net.topology();
  std::vector<char> seen_src(topo.num_links(), 0);
  std::vector<char> seen_dst(topo.num_links(), 0);
  Rational src_sum{0};
  Rational dst_sum{0};
  for (const Flow& flow : flows) {
    const ClosNetwork::ServerCoord s = net.source_coord(flow.src);
    const ClosNetwork::ServerCoord t = net.dest_coord(flow.dst);
    const LinkId src_link = net.source_link(s.tor, s.server);
    const LinkId dst_link = net.dest_link(t.tor, t.server);
    if (!seen_src[static_cast<std::size_t>(src_link)]) {
      seen_src[static_cast<std::size_t>(src_link)] = 1;
      src_sum += topo.link(src_link).capacity;
    }
    if (!seen_dst[static_cast<std::size_t>(dst_link)]) {
      seen_dst[static_cast<std::size_t>(dst_link)] = 1;
      dst_sum += topo.link(dst_link).capacity;
    }
  }
  return min(src_sum, dst_sum);
}

void SearchEngine::record_run_metrics(const std::vector<SearchStats>& per_worker,
                                      const SearchStats& total) const {
  OBS_COUNTER_INC("search.runs");
  OBS_COUNTER_ADD("search.candidates", total.waterfill_invocations);
  OBS_COUNTER_ADD("search.routings_covered", total.routings_covered);
  if (canonical_) OBS_COUNTER_INC("search.canonical_runs");
  OBS_GAUGE_SET("search.workers", workers_);
  OBS_GAUGE_SET("search.prefixes", prefixes_.size());
  OBS_GAUGE_SET("search.pool_middles", pool_.size());
  // Buffer growth observed by any worker's workspace after bind; a nonzero
  // reading means a steady-state allocation slipped into the inner loop.
  OBS_GAUGE_SET("waterfill.steady_state_allocs", total.workspace_allocs);
#if CLOSFAIR_OBS_ENABLED
  // Work-balance distribution: one sample per worker. (Histogram values are
  // nominally nanoseconds; here the "duration" is a water-fill count.)
  static obs::Histogram& per_worker_hist =
      obs::Registry::instance().histogram("search.worker_waterfills");
  for (const SearchStats& s : per_worker) per_worker_hist.record_ns(s.waterfill_invocations);
#else
  (void)per_worker;
#endif
}

SearchEngine::SearchEngine(const ClosNetwork& net, const FlowSet& flows,
                           const ExhaustiveOptions& options)
    : net_(net), flows_(flows) {
  num_middles_ = net.num_middles();

  // The enumeration alphabet is the surviving-middle pool: dead middles
  // (every uplink and downlink at zero — the mask a failed middle leaves)
  // never carry traffic, so no live routing uses them. When all middles are
  // dead every assignment is equally starved; enumerate over all labels,
  // which are then also trivially capacity-symmetric.
  pool_ = fault::surviving_middles(net);
  if (pool_.empty()) {
    pool_.resize(static_cast<std::size_t>(num_middles_));
    std::iota(pool_.begin(), pool_.end(), 1);
  }
  pool_size_ = static_cast<int>(pool_.size());

  // Both quotients need the pool to be capacity-interchangeable: the
  // canonical classes AND the odometer's fix_first_flow pin (flow 0 locked
  // to pool_.front()) are only exhaustive up to relabeling survivors. Failed
  // middles break the full-label symmetry, but the surviving labels may
  // still permute freely (fault/fault.hpp); a single dead or derated link
  // between survivors — e.g. one killed uplink with its middle otherwise
  // alive — invalidates both reductions, so the engine then enumerates the
  // full unpinned |pool|^|F| space. Pristine fabrics reduce to the original
  // middles_symmetric() gate.
  const bool symmetric = fault::surviving_middles_symmetric(net);
  canonical_ = options.exploit_middle_symmetry && symmetric;
  fix_first_ = options.fix_first_flow && symmetric;
  force_fallback_ = options.force_waterfill_fallback;
  const std::size_t num_flows = flows.size();

  // Guard the number of candidates that would be water-filled.
  const std::size_t odometer_free =
      num_flows - ((fix_first_ && num_flows > 0) ? 1 : 0);
  const std::uint64_t candidates =
      canonical_ ? canonical_class_count(pool_size_, num_flows)
                 : sat_pow(static_cast<std::uint64_t>(pool_size_), odometer_free);
  CF_CHECK_MSG(candidates <= options.max_routings,
               (canonical_ ? "canonical" : "odometer")
                   << " routing space of " << candidates << " candidates ("
                   << pool_size_ << " surviving of " << num_middles_ << " middles, "
                   << num_flows << " flows) exceeds max_routings "
                   << options.max_routings);

  covered_per_class_.assign(static_cast<std::size_t>(pool_size_) + 1, 1);
  for (int k = 1; k <= pool_size_; ++k) {
    const std::uint64_t orbit = orbit_size(pool_size_, k);
    // Under fix_first_flow the reported space is the slice with flow 0 on
    // the pool's first middle; by symmetry exactly 1/|pool| of each orbit
    // lies in that slice.
    covered_per_class_[static_cast<std::size_t>(k)] =
        (fix_first_ && num_flows > 0 && orbit != UINT64_MAX)
            ? orbit / static_cast<std::uint64_t>(pool_size_)
            : orbit;
  }

  workers_ = num_flows >= 2 ? std::max(1u, options.num_threads) : 1u;

  // Carve the space into prefix work units: the shortest prefix length whose
  // unit count gives each worker several units to pull. Serial runs use a
  // single empty prefix — the same code path, no partition overhead.
  prefix_len_ = 0;
  if (workers_ > 1) {
    const std::uint64_t target = static_cast<std::uint64_t>(workers_) * 8;
    std::uint64_t count = 1;
    while (prefix_len_ < num_flows && count < target) {
      ++prefix_len_;
      count = canonical_
                  ? canonical_class_count(pool_size_, prefix_len_)
                  : sat_pow(static_cast<std::uint64_t>(pool_size_),
                            prefix_len_ - ((fix_first_ && prefix_len_ > 0) ? 1 : 0));
    }
  }

  // Generate the prefixes in enumeration order (lexicographic), carrying the
  // running maximum for canonical continuation. `value` walks 1-based pool
  // indices; `current` stores the actual middle labels they map to.
  prefixes_.clear();
  MiddleAssignment current(prefix_len_, pool_.front());
  // Iterative DFS emitting leaves at depth prefix_len_ in lex order.
  std::vector<int> value(prefix_len_ + 1, 0);
  std::vector<int> max_before(prefix_len_ + 1, 0);
  std::size_t pos = 0;
  while (true) {
    if (pos == prefix_len_) {
      prefixes_.push_back(Prefix{current, max_before[pos]});
      if (prefix_len_ == 0) break;
      --pos;
      continue;
    }
    const int hi = canonical_ ? std::min(pool_size_, max_before[pos] + 1)
                   : (pos == 0 && fix_first_) ? 1
                                              : pool_size_;
    if (value[pos] < hi) {
      ++value[pos];
      current[pos] = pool_[static_cast<std::size_t>(value[pos] - 1)];
      max_before[pos + 1] = std::max(max_before[pos], value[pos]);
      ++pos;
      value[pos] = 0;
    } else {
      if (pos == 0) break;
      --pos;
    }
  }
}

}  // namespace closfair
