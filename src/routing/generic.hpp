// Topology-generic routing over explicit candidate path sets.
//
// The Clos-specific algorithms (routing/ecmp.hpp, routing/greedy.hpp) encode
// "a path is a middle switch". Multi-stage fabrics like fat-trees
// (net/fattree.hpp) have richer path sets; these variants take each flow's
// candidate paths explicitly and return a plain Routing, after which all the
// fairness machinery applies unchanged.
#pragma once

#include <vector>

#include "flow/flow.hpp"
#include "flow/routing.hpp"
#include "net/topology.hpp"
#include "util/rng.hpp"

namespace closfair {

/// Per-flow candidate path sets; candidates[f] must be non-empty and each
/// path valid for flow f.
using PathCandidates = std::vector<std::vector<Path>>;

/// ECMP over explicit candidates: uniform random choice per flow.
[[nodiscard]] Routing ecmp_paths(const PathCandidates& candidates, Rng& rng);

/// Greedy least-congested over explicit candidates: place flows (largest
/// demand first) on the candidate minimizing the resulting maximum link
/// congestion. Ties prefer the earliest candidate.
[[nodiscard]] Routing greedy_paths(const Topology& topo, const PathCandidates& candidates,
                                   const std::vector<double>& demands);

/// Local search over explicit candidates: single-flow moves that reduce
/// (max congestion, sum of squared loads), starting from `start`.
[[nodiscard]] Routing congestion_local_search_paths(const Topology& topo,
                                                    const PathCandidates& candidates,
                                                    const std::vector<double>& demands,
                                                    Routing start,
                                                    std::size_t max_moves = 10'000);

}  // namespace closfair
