// Greedy congestion-aware routing (§6): state-of-the-art data-center routing
// algorithms assume flows arrive with their macro-switch rates as demands and
// greedily place each flow on the path minimizing the resulting maximum link
// congestion (congestion = total demand on link / capacity). This models the
// Hedera/CONGA family the paper's related-work section describes.
#pragma once

#include <vector>

#include "flow/flow.hpp"
#include "flow/routing.hpp"
#include "net/clos.hpp"

namespace closfair {

struct GreedyOptions {
  /// Place large-demand flows first (first-fit decreasing). When false, flows
  /// are placed in collection order.
  bool sort_by_demand = true;
};

/// Greedily assign each flow to the middle switch minimizing the maximum
/// congestion over its path links, given per-flow demands (typically the
/// macro-switch max-min rates). Ties prefer the lowest middle index.
[[nodiscard]] MiddleAssignment greedy_routing(const ClosNetwork& net, const FlowSet& flows,
                                              const std::vector<double>& demands,
                                              const GreedyOptions& options = {});

/// Unit-demand variant: minimizes the maximum number of flows per link.
[[nodiscard]] MiddleAssignment greedy_routing_unit(const ClosNetwork& net,
                                                   const FlowSet& flows);

}  // namespace closfair
