#include "routing/relative_maxmin.hpp"

#include <algorithm>

#include "fairness/waterfill.hpp"
#include "routing/ecmp.hpp"

namespace closfair {
namespace {

std::vector<Rational> sorted_ratios(const Allocation<Rational>& alloc,
                                    const std::vector<Rational>& macro_rates) {
  std::vector<Rational> ratios(alloc.size());
  for (FlowIndex f = 0; f < alloc.size(); ++f) ratios[f] = alloc.rate(f) / macro_rates[f];
  std::sort(ratios.begin(), ratios.end());
  return ratios;
}

void check_macro_rates(const FlowSet& flows, const std::vector<Rational>& macro_rates) {
  CF_CHECK_MSG(macro_rates.size() == flows.size(),
               "macro rates cover " << macro_rates.size() << " flows, expected "
                                    << flows.size());
  for (const Rational& r : macro_rates) {
    CF_CHECK_MSG(Rational{0} < r, "relative max-min needs strictly positive macro rates");
  }
}

RelativeMaxMinResult package(MiddleAssignment middles, Allocation<Rational> alloc,
                             std::vector<Rational> ratios) {
  RelativeMaxMinResult result;
  result.worst_ratio = ratios.empty() ? Rational{0} : ratios.front();
  result.middles = std::move(middles);
  result.alloc = std::move(alloc);
  result.ratios = std::move(ratios);
  return result;
}

}  // namespace

RelativeMaxMinResult relative_max_min_search(const ClosNetwork& net, const FlowSet& flows,
                                             const std::vector<Rational>& macro_rates,
                                             Rng& rng, std::size_t restarts,
                                             std::size_t max_moves) {
  check_macro_rates(flows, macro_rates);
  CF_CHECK(restarts >= 1);

  MiddleAssignment best_middles;
  Allocation<Rational> best_alloc;
  std::vector<Rational> best_ratios;
  bool have_best = false;

  for (std::size_t r = 0; r < restarts; ++r) {
    MiddleAssignment middles =
        r == 0 ? MiddleAssignment(flows.size(), 1) : ecmp_routing(net, flows, rng);
    Allocation<Rational> alloc = max_min_fair<Rational>(net, flows, middles);
    std::vector<Rational> ratios = sorted_ratios(alloc, macro_rates);

    std::size_t moves = 0;
    bool improved = true;
    while (improved && moves < max_moves) {
      improved = false;
      for (FlowIndex f = 0; f < flows.size() && moves < max_moves; ++f) {
        const int old_m = middles[f];
        for (int m = 1; m <= net.num_middles(); ++m) {
          if (m == old_m) continue;
          middles[f] = m;
          Allocation<Rational> cand = max_min_fair<Rational>(net, flows, middles);
          std::vector<Rational> cand_ratios = sorted_ratios(cand, macro_rates);
          if (lex_compare(cand_ratios, ratios) == std::strong_ordering::greater) {
            alloc = std::move(cand);
            ratios = std::move(cand_ratios);
            ++moves;
            improved = true;
            break;
          }
          middles[f] = old_m;
        }
      }
    }
    if (!have_best || lex_compare(ratios, best_ratios) == std::strong_ordering::greater) {
      have_best = true;
      best_middles = middles;
      best_alloc = std::move(alloc);
      best_ratios = std::move(ratios);
    }
  }
  return package(std::move(best_middles), std::move(best_alloc), std::move(best_ratios));
}

RelativeMaxMinResult relative_max_min_exhaustive(const ClosNetwork& net, const FlowSet& flows,
                                                 const std::vector<Rational>& macro_rates,
                                                 std::uint64_t max_routings) {
  check_macro_rates(flows, macro_rates);
  const int n = net.num_middles();

  // Odometer enumeration with flow 0 pinned to middle 1 (middle symmetry).
  std::uint64_t space = 1;
  for (std::size_t f = 1; f < flows.size(); ++f) {
    CF_CHECK_MSG(space <= max_routings / static_cast<std::uint64_t>(n),
                 "routing space exceeds max_routings " << max_routings);
    space *= static_cast<std::uint64_t>(n);
  }

  MiddleAssignment middles(flows.size(), 1);
  MiddleAssignment best_middles;
  Allocation<Rational> best_alloc;
  std::vector<Rational> best_ratios;
  bool have_best = false;

  while (true) {
    Allocation<Rational> alloc = max_min_fair<Rational>(net, flows, middles);
    std::vector<Rational> ratios = sorted_ratios(alloc, macro_rates);
    if (!have_best || lex_compare(ratios, best_ratios) == std::strong_ordering::greater) {
      have_best = true;
      best_middles = middles;
      best_alloc = std::move(alloc);
      best_ratios = std::move(ratios);
    }
    std::size_t pos = 1;
    while (pos < middles.size()) {
      if (middles[pos] < n) {
        ++middles[pos];
        break;
      }
      middles[pos] = 1;
      ++pos;
    }
    if (pos >= middles.size()) break;
  }
  CF_CHECK_MSG(have_best, "empty flow collection");
  return package(std::move(best_middles), std::move(best_alloc), std::move(best_ratios));
}

}  // namespace closfair
