// Relative max-min fairness (§7, discussion of R2) — the paper's proposed
// alternative routing objective, left open: ensure each flow's network rate
// is at least some constant fraction of its macro-switch rate, i.e. maximize
// (in lexicographic order) the sorted vector of per-flow ratios
// a(f)/a^MmF_MS(f).
//
// Whether relative max-min fairness can closely implement the macro-switch
// abstraction is an open question; this module contributes the two tools an
// investigation needs: a hill-climbing heuristic over routings, and an exact
// exhaustive optimizer for small instances.
#pragma once

#include <cstdint>
#include <vector>

#include "flow/allocation.hpp"
#include "flow/flow.hpp"
#include "flow/routing.hpp"
#include "net/clos.hpp"
#include "util/rng.hpp"

namespace closfair {

struct RelativeMaxMinResult {
  MiddleAssignment middles;
  Allocation<Rational> alloc;         ///< max-min fair allocation for `middles`
  std::vector<Rational> ratios;       ///< sorted a(f) / macro_rate(f), ascending
  Rational worst_ratio{0};            ///< ratios.front() (1 means full replication)
};

/// Hill-climbing heuristic with `restarts` random restarts: accepts moves
/// that lexicographically improve the sorted ratio vector. Macro rates must
/// be strictly positive (a zero-rate flow has no meaningful ratio).
[[nodiscard]] RelativeMaxMinResult relative_max_min_search(
    const ClosNetwork& net, const FlowSet& flows, const std::vector<Rational>& macro_rates,
    Rng& rng, std::size_t restarts = 4, std::size_t max_moves = 10'000);

/// Exact optimum by enumeration (exponential; guarded by max_routings).
[[nodiscard]] RelativeMaxMinResult relative_max_min_exhaustive(
    const ClosNetwork& net, const FlowSet& flows, const std::vector<Rational>& macro_rates,
    std::uint64_t max_routings = 50'000'000);

}  // namespace closfair
