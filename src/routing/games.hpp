// Routing games with progressive filling (Harks et al., the paper's
// citation [17]).
//
// Each flow is a selfish player choosing its middle switch; given a joint
// routing, payoffs are the max-min fair rates congestion control would
// impose (progressive filling). Best-response dynamics: players take turns
// moving to the middle maximizing their own rate (strictly). This module
// runs the dynamics, detects Nash equilibria (no player can strictly
// improve), and reports the price of anarchy against the throughput- and
// lex-optimal routings — connecting the paper's model to its game-theoretic
// neighbor.
#pragma once

#include <cstddef>

#include "flow/allocation.hpp"
#include "flow/flow.hpp"
#include "flow/routing.hpp"
#include "net/clos.hpp"

namespace closfair {

struct BestResponseResult {
  MiddleAssignment middles;       ///< final joint routing
  Allocation<Rational> alloc;     ///< max-min allocation of the final routing
  std::size_t moves = 0;          ///< accepted strict best-response moves
  bool reached_nash = false;      ///< a full pass with no strict improvement
};

struct BestResponseOptions {
  /// Passes over all players before declaring a cycle; the dynamics are not
  /// guaranteed to converge in general games, so this bounds the run.
  std::size_t max_passes = 200;
};

/// Run round-robin strict best-response dynamics from `start`. Each player
/// deviates to the middle that strictly maximizes its own max-min rate,
/// ties keeping the current choice.
[[nodiscard]] BestResponseResult best_response_dynamics(
    const ClosNetwork& net, const FlowSet& flows, MiddleAssignment start,
    const BestResponseOptions& options = {});

/// True if no player can strictly increase its own max-min rate by moving.
[[nodiscard]] bool is_nash_routing(const ClosNetwork& net, const FlowSet& flows,
                                   const MiddleAssignment& middles);

}  // namespace closfair
