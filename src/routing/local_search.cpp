#include "routing/local_search.hpp"

#include <algorithm>
#include <limits>

#include "fairness/waterfill.hpp"
#include "fault/fault.hpp"
#include "routing/ecmp.hpp"

namespace closfair {
namespace {

// Objective for congestion descent: (max link congestion, sum of squared
// loads). The quadratic tie-breaker spreads load even when the max is fixed.
struct CongestionScore {
  double max_congestion = 0.0;
  double sum_sq = 0.0;

  friend bool operator<(const CongestionScore& a, const CongestionScore& b) {
    if (a.max_congestion != b.max_congestion) return a.max_congestion < b.max_congestion;
    return a.sum_sq < b.sum_sq;
  }
};

CongestionScore score_loads(const Topology& topo, const std::vector<double>& load) {
  CongestionScore s;
  for (std::size_t l = 0; l < load.size(); ++l) {
    const Link& link = topo.link(static_cast<LinkId>(l));
    if (link.unbounded) continue;
    const double cap = link.capacity.to_double();
    if (cap == 0.0) {
      // Dead link (fault mask): any load on it is infinitely congested; an
      // idle dead link costs nothing. Guards the 0/0 NaN that would poison
      // every score comparison.
      if (load[l] > 0.0) s.max_congestion = std::numeric_limits<double>::infinity();
    } else {
      s.max_congestion = std::max(s.max_congestion, load[l] / cap);
    }
    s.sum_sq += load[l] * load[l];
  }
  return s;
}

// Per-flow usable-middle mask (flat |F| x n, 1 = usable) for degraded
// fabrics; empty when the fabric has no dead fabric link, in which case the
// climbers scan all middles exactly as before.
std::vector<char> usable_mask(const ClosNetwork& net, const FlowSet& flows) {
  if (!fault::has_dead_fabric_links(net)) return {};
  const std::size_t n = static_cast<std::size_t>(net.num_middles());
  std::vector<char> mask(flows.size() * n, 0);
  for (FlowIndex f = 0; f < flows.size(); ++f) {
    const ClosNetwork::ServerCoord s = net.source_coord(flows[f].src);
    const ClosNetwork::ServerCoord t = net.dest_coord(flows[f].dst);
    for (int m = 1; m <= net.num_middles(); ++m) {
      mask[f * n + static_cast<std::size_t>(m - 1)] =
          fault::middle_usable(net, s.tor, t.tor, m) ? 1 : 0;
    }
  }
  return mask;
}

}  // namespace

MiddleAssignment congestion_local_search(const ClosNetwork& net, const FlowSet& flows,
                                         const std::vector<double>& demands,
                                         MiddleAssignment start,
                                         const LocalSearchOptions& options) {
  CF_CHECK(demands.size() == flows.size());
  CF_CHECK(start.size() == flows.size());
  const auto& topo = net.topology();

  std::vector<double> load(topo.num_links(), 0.0);
  for (FlowIndex f = 0; f < flows.size(); ++f) {
    for (LinkId l : net.path(flows[f].src, flows[f].dst, start[f])) {
      load[static_cast<std::size_t>(l)] += demands[f];
    }
  }
  CongestionScore current = score_loads(topo, load);

  const std::vector<char> usable = usable_mask(net, flows);
  const std::size_t num_middles = static_cast<std::size_t>(net.num_middles());

  std::size_t moves = 0;
  bool improved = true;
  while (improved && moves < options.max_moves) {
    improved = false;
    for (FlowIndex f = 0; f < flows.size() && moves < options.max_moves; ++f) {
      const int old_m = start[f];
      for (int m = 1; m <= net.num_middles(); ++m) {
        if (m == old_m) continue;
        // Never move a flow onto a dead middle (degraded fabrics only).
        if (!usable.empty() && !usable[f * num_middles + static_cast<std::size_t>(m - 1)]) {
          continue;
        }
        // Apply the move, score, keep or revert.
        for (LinkId l : net.path(flows[f].src, flows[f].dst, old_m)) {
          load[static_cast<std::size_t>(l)] -= demands[f];
        }
        for (LinkId l : net.path(flows[f].src, flows[f].dst, m)) {
          load[static_cast<std::size_t>(l)] += demands[f];
        }
        const CongestionScore candidate = score_loads(topo, load);
        if (candidate < current) {
          current = candidate;
          start[f] = m;
          ++moves;
          improved = true;
          break;  // re-scan this flow's new neighborhood later
        }
        for (LinkId l : net.path(flows[f].src, flows[f].dst, m)) {
          load[static_cast<std::size_t>(l)] -= demands[f];
        }
        for (LinkId l : net.path(flows[f].src, flows[f].dst, old_m)) {
          load[static_cast<std::size_t>(l)] += demands[f];
        }
      }
    }
  }
  return start;
}

namespace {

// Shared skeleton for the two exact hill climbers: `better(candidate,
// incumbent)` decides acceptance on (sorted rates, throughput).
template <typename Better>
LexSearchResult hill_climb(const ClosNetwork& net, const FlowSet& flows,
                           MiddleAssignment start, const LocalSearchOptions& options,
                           Better better) {
  CF_CHECK(start.size() == flows.size());
  Allocation<Rational> current = max_min_fair<Rational>(net, flows, start);
  const std::vector<char> usable = usable_mask(net, flows);
  const std::size_t num_middles = static_cast<std::size_t>(net.num_middles());
  std::size_t moves = 0;

  bool improved = true;
  while (improved && moves < options.max_moves) {
    improved = false;
    for (FlowIndex f = 0; f < flows.size() && moves < options.max_moves; ++f) {
      const int old_m = start[f];
      for (int m = 1; m <= net.num_middles(); ++m) {
        if (m == old_m) continue;
        // Skip dead middles: routing into one can only zero this flow's rate,
        // so the candidate is never a strict improvement — not evaluating it
        // saves a water-fill per dead middle per scan on degraded fabrics.
        if (!usable.empty() && !usable[f * num_middles + static_cast<std::size_t>(m - 1)]) {
          continue;
        }
        start[f] = m;
        Allocation<Rational> candidate = max_min_fair<Rational>(net, flows, start);
        if (better(candidate, current)) {
          current = std::move(candidate);
          ++moves;
          improved = true;
          break;
        }
        start[f] = old_m;
      }
    }
  }
  return LexSearchResult{std::move(start), std::move(current), moves};
}

}  // namespace

LexSearchResult lex_max_min_local_search(const ClosNetwork& net, const FlowSet& flows,
                                         MiddleAssignment start,
                                         const LocalSearchOptions& options) {
  return hill_climb(net, flows, std::move(start), options,
                    [](const Allocation<Rational>& cand, const Allocation<Rational>& cur) {
                      return lex_compare_sorted(cand, cur) == std::strong_ordering::greater;
                    });
}

LexSearchResult lex_max_min_multistart(const ClosNetwork& net, const FlowSet& flows,
                                       Rng& rng, std::size_t restarts,
                                       const LocalSearchOptions& options) {
  CF_CHECK(restarts >= 1);
  LexSearchResult best;
  bool have_best = false;
  for (std::size_t r = 0; r < restarts; ++r) {
    MiddleAssignment start =
        r == 0 ? MiddleAssignment(flows.size(), 1) : ecmp_routing(net, flows, rng);
    LexSearchResult result = lex_max_min_local_search(net, flows, std::move(start), options);
    if (!have_best ||
        lex_compare_sorted(result.alloc, best.alloc) == std::strong_ordering::greater) {
      best = std::move(result);
      have_best = true;
    }
  }
  return best;
}

LexSearchResult throughput_max_min_local_search(const ClosNetwork& net, const FlowSet& flows,
                                                MiddleAssignment start,
                                                const LocalSearchOptions& options) {
  return hill_climb(net, flows, std::move(start), options,
                    [](const Allocation<Rational>& cand, const Allocation<Rational>& cur) {
                      const Rational ct = cand.throughput();
                      const Rational it = cur.throughput();
                      if (it < ct) return true;
                      if (ct < it) return false;
                      return lex_compare_sorted(cand, cur) == std::strong_ordering::greater;
                    });
}

}  // namespace closfair
