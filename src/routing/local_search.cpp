#include "routing/local_search.hpp"

#include <algorithm>

#include "fairness/waterfill.hpp"
#include "routing/ecmp.hpp"

namespace closfair {
namespace {

// Objective for congestion descent: (max link congestion, sum of squared
// loads). The quadratic tie-breaker spreads load even when the max is fixed.
struct CongestionScore {
  double max_congestion = 0.0;
  double sum_sq = 0.0;

  friend bool operator<(const CongestionScore& a, const CongestionScore& b) {
    if (a.max_congestion != b.max_congestion) return a.max_congestion < b.max_congestion;
    return a.sum_sq < b.sum_sq;
  }
};

CongestionScore score_loads(const Topology& topo, const std::vector<double>& load) {
  CongestionScore s;
  for (std::size_t l = 0; l < load.size(); ++l) {
    const Link& link = topo.link(static_cast<LinkId>(l));
    if (link.unbounded) continue;
    const double c = load[l] / link.capacity.to_double();
    s.max_congestion = std::max(s.max_congestion, c);
    s.sum_sq += load[l] * load[l];
  }
  return s;
}

}  // namespace

MiddleAssignment congestion_local_search(const ClosNetwork& net, const FlowSet& flows,
                                         const std::vector<double>& demands,
                                         MiddleAssignment start,
                                         const LocalSearchOptions& options) {
  CF_CHECK(demands.size() == flows.size());
  CF_CHECK(start.size() == flows.size());
  const auto& topo = net.topology();

  std::vector<double> load(topo.num_links(), 0.0);
  for (FlowIndex f = 0; f < flows.size(); ++f) {
    for (LinkId l : net.path(flows[f].src, flows[f].dst, start[f])) {
      load[static_cast<std::size_t>(l)] += demands[f];
    }
  }
  CongestionScore current = score_loads(topo, load);

  std::size_t moves = 0;
  bool improved = true;
  while (improved && moves < options.max_moves) {
    improved = false;
    for (FlowIndex f = 0; f < flows.size() && moves < options.max_moves; ++f) {
      const int old_m = start[f];
      for (int m = 1; m <= net.num_middles(); ++m) {
        if (m == old_m) continue;
        // Apply the move, score, keep or revert.
        for (LinkId l : net.path(flows[f].src, flows[f].dst, old_m)) {
          load[static_cast<std::size_t>(l)] -= demands[f];
        }
        for (LinkId l : net.path(flows[f].src, flows[f].dst, m)) {
          load[static_cast<std::size_t>(l)] += demands[f];
        }
        const CongestionScore candidate = score_loads(topo, load);
        if (candidate < current) {
          current = candidate;
          start[f] = m;
          ++moves;
          improved = true;
          break;  // re-scan this flow's new neighborhood later
        }
        for (LinkId l : net.path(flows[f].src, flows[f].dst, m)) {
          load[static_cast<std::size_t>(l)] -= demands[f];
        }
        for (LinkId l : net.path(flows[f].src, flows[f].dst, old_m)) {
          load[static_cast<std::size_t>(l)] += demands[f];
        }
      }
    }
  }
  return start;
}

namespace {

// Shared skeleton for the two exact hill climbers: `better(candidate,
// incumbent)` decides acceptance on (sorted rates, throughput).
template <typename Better>
LexSearchResult hill_climb(const ClosNetwork& net, const FlowSet& flows,
                           MiddleAssignment start, const LocalSearchOptions& options,
                           Better better) {
  CF_CHECK(start.size() == flows.size());
  Allocation<Rational> current = max_min_fair<Rational>(net, flows, start);
  std::size_t moves = 0;

  bool improved = true;
  while (improved && moves < options.max_moves) {
    improved = false;
    for (FlowIndex f = 0; f < flows.size() && moves < options.max_moves; ++f) {
      const int old_m = start[f];
      for (int m = 1; m <= net.num_middles(); ++m) {
        if (m == old_m) continue;
        start[f] = m;
        Allocation<Rational> candidate = max_min_fair<Rational>(net, flows, start);
        if (better(candidate, current)) {
          current = std::move(candidate);
          ++moves;
          improved = true;
          break;
        }
        start[f] = old_m;
      }
    }
  }
  return LexSearchResult{std::move(start), std::move(current), moves};
}

}  // namespace

LexSearchResult lex_max_min_local_search(const ClosNetwork& net, const FlowSet& flows,
                                         MiddleAssignment start,
                                         const LocalSearchOptions& options) {
  return hill_climb(net, flows, std::move(start), options,
                    [](const Allocation<Rational>& cand, const Allocation<Rational>& cur) {
                      return lex_compare_sorted(cand, cur) == std::strong_ordering::greater;
                    });
}

LexSearchResult lex_max_min_multistart(const ClosNetwork& net, const FlowSet& flows,
                                       Rng& rng, std::size_t restarts,
                                       const LocalSearchOptions& options) {
  CF_CHECK(restarts >= 1);
  LexSearchResult best;
  bool have_best = false;
  for (std::size_t r = 0; r < restarts; ++r) {
    MiddleAssignment start =
        r == 0 ? MiddleAssignment(flows.size(), 1) : ecmp_routing(net, flows, rng);
    LexSearchResult result = lex_max_min_local_search(net, flows, std::move(start), options);
    if (!have_best ||
        lex_compare_sorted(result.alloc, best.alloc) == std::strong_ordering::greater) {
      best = std::move(result);
      have_best = true;
    }
  }
  return best;
}

LexSearchResult throughput_max_min_local_search(const ClosNetwork& net, const FlowSet& flows,
                                                MiddleAssignment start,
                                                const LocalSearchOptions& options) {
  return hill_climb(net, flows, std::move(start), options,
                    [](const Allocation<Rational>& cand, const Allocation<Rational>& cur) {
                      const Rational ct = cand.throughput();
                      const Rational it = cur.throughput();
                      if (it < ct) return true;
                      if (ct < it) return false;
                      return lex_compare_sorted(cand, cur) == std::strong_ordering::greater;
                    });
}

}  // namespace closfair
