#include "routing/generic.hpp"

#include <algorithm>
#include <numeric>

namespace closfair {
namespace {

void check_candidates(const PathCandidates& candidates) {
  for (std::size_t f = 0; f < candidates.size(); ++f) {
    CF_CHECK_MSG(!candidates[f].empty(), "flow " << f << " has no candidate paths");
  }
}

double max_congestion_after(const Topology& topo, const std::vector<double>& load,
                            const Path& path, double demand) {
  double worst = 0.0;
  for (LinkId l : path) {
    const Link& link = topo.link(l);
    if (link.unbounded) continue;
    worst = std::max(worst,
                     (load[static_cast<std::size_t>(l)] + demand) / link.capacity.to_double());
  }
  return worst;
}

void apply(std::vector<double>& load, const Path& path, double demand) {
  for (LinkId l : path) load[static_cast<std::size_t>(l)] += demand;
}

void unapply(std::vector<double>& load, const Path& path, double demand) {
  for (LinkId l : path) load[static_cast<std::size_t>(l)] -= demand;
}

struct Score {
  double max_congestion = 0.0;
  double sum_sq = 0.0;
  friend bool operator<(const Score& a, const Score& b) {
    if (a.max_congestion != b.max_congestion) return a.max_congestion < b.max_congestion;
    return a.sum_sq < b.sum_sq;
  }
};

Score score_loads(const Topology& topo, const std::vector<double>& load) {
  Score s;
  for (std::size_t l = 0; l < load.size(); ++l) {
    const Link& link = topo.link(static_cast<LinkId>(l));
    if (link.unbounded) continue;
    s.max_congestion = std::max(s.max_congestion, load[l] / link.capacity.to_double());
    s.sum_sq += load[l] * load[l];
  }
  return s;
}

}  // namespace

Routing ecmp_paths(const PathCandidates& candidates, Rng& rng) {
  check_candidates(candidates);
  std::vector<Path> paths;
  paths.reserve(candidates.size());
  for (const auto& options : candidates) {
    paths.push_back(options[rng.next_below(options.size())]);
  }
  return Routing{std::move(paths)};
}

Routing greedy_paths(const Topology& topo, const PathCandidates& candidates,
                     const std::vector<double>& demands) {
  check_candidates(candidates);
  CF_CHECK_MSG(demands.size() == candidates.size(),
               "demands cover " << demands.size() << " flows, expected "
                                << candidates.size());
  std::vector<std::size_t> order(candidates.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) { return demands[a] > demands[b]; });

  std::vector<double> load(topo.num_links(), 0.0);
  std::vector<Path> chosen(candidates.size());
  for (std::size_t f : order) {
    std::size_t best = 0;
    double best_congestion = 0.0;
    bool first = true;
    for (std::size_t i = 0; i < candidates[f].size(); ++i) {
      const double c = max_congestion_after(topo, load, candidates[f][i], demands[f]);
      if (first || c < best_congestion) {
        first = false;
        best_congestion = c;
        best = i;
      }
    }
    chosen[f] = candidates[f][best];
    apply(load, chosen[f], demands[f]);
  }
  return Routing{std::move(chosen)};
}

Routing congestion_local_search_paths(const Topology& topo, const PathCandidates& candidates,
                                      const std::vector<double>& demands, Routing start,
                                      std::size_t max_moves) {
  check_candidates(candidates);
  CF_CHECK(demands.size() == candidates.size());
  CF_CHECK(start.size() == candidates.size());

  std::vector<double> load(topo.num_links(), 0.0);
  for (FlowIndex f = 0; f < start.size(); ++f) apply(load, start.path(f), demands[f]);
  Score current = score_loads(topo, load);

  std::size_t moves = 0;
  bool improved = true;
  while (improved && moves < max_moves) {
    improved = false;
    for (FlowIndex f = 0; f < start.size() && moves < max_moves; ++f) {
      const Path old_path = start.path(f);
      for (const Path& candidate : candidates[f]) {
        if (candidate == old_path) continue;
        unapply(load, old_path, demands[f]);
        apply(load, candidate, demands[f]);
        const Score score = score_loads(topo, load);
        if (score < current) {
          current = score;
          start.set_path(f, candidate);
          ++moves;
          improved = true;
          break;
        }
        unapply(load, candidate, demands[f]);
        apply(load, old_path, demands[f]);
      }
    }
  }
  return start;
}

}  // namespace closfair
