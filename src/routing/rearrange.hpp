// Multirate rearrangeability (§6, related work): route a feasible
// macro-switch allocation in a Clos network while minimizing the number of
// middle switches used.
//
// The classic setting (Chung & Ross; Melen & Turner; Ngo & Vu; Khan & Singh)
// fixes the ToR count and servers-per-ToR n and asks how many middles m make
// *every* feasible macro allocation routable; the conjecture is m = 2n-1,
// with the best known bounds 5n/4 (lower) and 20n/9 (upper). This module
// provides:
//
//  * first_fit_rearrange — the first-fit-decreasing heuristic the literature
//    builds on: place flows by decreasing rate on the lowest-index middle
//    with room on both the uplink and the downlink.
//  * min_middles_exact — exact minimum middle count by incremental search
//    over the backtracking replication solver (small instances only).
//
// The ext_rearrange bench probes how both compare to n and the 2n-1
// conjecture on random feasible allocations.
#pragma once

#include <optional>

#include "flow/flow.hpp"
#include "flow/routing.hpp"
#include "net/clos.hpp"
#include "routing/replication.hpp"
#include "util/rational.hpp"

namespace closfair {

struct RearrangeResult {
  int middles_used = 0;
  MiddleAssignment assignment;  ///< 1-based; uses middles 1..middles_used
};

/// First-fit decreasing over middle switches. `net` must have at least as
/// many middles as the heuristic ends up using; throws ContractViolation if
/// it runs out (feasible allocations never need more than num_middles when
/// num_middles >= 2n-1 per the conjectured bound — pass a generous network).
/// Rates must be non-negative and respect edge-link capacities.
[[nodiscard]] RearrangeResult first_fit_rearrange(const ClosNetwork& net, const FlowSet& flows,
                                                  const std::vector<Rational>& rates);

/// Exact minimum number of middles that admits a feasible routing, found by
/// trying m = lower-bound, lower-bound+1, ... with the exhaustive
/// replication searcher. Returns nullopt if even all of net's middles do not
/// suffice. Exponential: small instances only.
[[nodiscard]] std::optional<int> min_middles_exact(const ClosNetwork& net,
                                                   const FlowSet& flows,
                                                   const std::vector<Rational>& rates,
                                                   const ReplicationOptions& options = {});

/// A simple volume lower bound on the middle count: the max over ToRs of the
/// total rate leaving (entering) that ToR, divided by link capacity, rounded
/// up. Any feasible routing needs at least this many middles.
[[nodiscard]] int middle_count_lower_bound(const ClosNetwork& net, const FlowSet& flows,
                                           const std::vector<Rational>& rates);

}  // namespace closfair
