#include "routing/games.hpp"

#include "fairness/waterfill.hpp"

namespace closfair {
namespace {

// The rate flow f would get if it alone moved to `middle`.
Rational rate_after_move(const ClosNetwork& net, const FlowSet& flows,
                         MiddleAssignment& middles, FlowIndex f, int middle) {
  const int old_middle = middles[f];
  middles[f] = middle;
  const Rational rate = max_min_fair<Rational>(net, flows, middles).rate(f);
  middles[f] = old_middle;
  return rate;
}

}  // namespace

BestResponseResult best_response_dynamics(const ClosNetwork& net, const FlowSet& flows,
                                          MiddleAssignment start,
                                          const BestResponseOptions& options) {
  CF_CHECK(start.size() == flows.size());
  BestResponseResult result;
  result.middles = std::move(start);

  for (std::size_t pass = 0; pass < options.max_passes; ++pass) {
    bool any_move = false;
    for (FlowIndex f = 0; f < flows.size(); ++f) {
      const Rational current =
          max_min_fair<Rational>(net, flows, result.middles).rate(f);
      int best_middle = result.middles[f];
      Rational best_rate = current;
      for (int m = 1; m <= net.num_middles(); ++m) {
        if (m == result.middles[f]) continue;
        const Rational candidate = rate_after_move(net, flows, result.middles, f, m);
        if (best_rate < candidate) {
          best_rate = candidate;
          best_middle = m;
        }
      }
      if (best_middle != result.middles[f]) {
        result.middles[f] = best_middle;
        ++result.moves;
        any_move = true;
      }
    }
    if (!any_move) {
      result.reached_nash = true;
      break;
    }
  }
  result.alloc = max_min_fair<Rational>(net, flows, result.middles);
  return result;
}

bool is_nash_routing(const ClosNetwork& net, const FlowSet& flows,
                     const MiddleAssignment& middles) {
  CF_CHECK(middles.size() == flows.size());
  MiddleAssignment working = middles;
  const Allocation<Rational> base = max_min_fair<Rational>(net, flows, working);
  for (FlowIndex f = 0; f < flows.size(); ++f) {
    for (int m = 1; m <= net.num_middles(); ++m) {
      if (m == working[f]) continue;
      if (base.rate(f) < rate_after_move(net, flows, working, f, m)) return false;
    }
  }
  return true;
}

}  // namespace closfair
