// The Doom-Switch algorithm (Algorithm 1, §5).
//
// Approximates a throughput-max-min fair allocation:
//   1. Compute a maximum matching F' of the server flow multigraph G^MS
//      (these flows can all carry rate 1 simultaneously — Lemma 3.2).
//   2. König-color the switch multigraph G^C restricted to F' with n colors
//      and assign color m to middle switch M_m, giving F' a link-disjoint
//      routing (Lemma 5.2).
//   3. Dump every remaining flow onto the middle switch carrying the fewest
//      matched flows — the eponymous doomed switch — where congestion
//      control crushes their rates in favor of the matched flows.
#pragma once

#include <vector>

#include "flow/flow.hpp"
#include "flow/routing.hpp"
#include "net/clos.hpp"

namespace closfair {

struct DoomSwitchResult {
  MiddleAssignment middles;            ///< 1-based middle per flow
  std::vector<FlowIndex> matched;      ///< the maximum matching F' (flow indices)
  int doomed_middle = 1;               ///< middle switch receiving F \ F'
};

/// Run Algorithm 1. Requires that the matching F' can be n-colored in G^C,
/// which holds whenever servers_per_tor <= num_middles (always true for the
/// paper's C_n); throws ContractViolation otherwise.
[[nodiscard]] DoomSwitchResult doom_switch(const ClosNetwork& net, const FlowSet& flows);

}  // namespace closfair
