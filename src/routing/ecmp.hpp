// ECMP-style randomized routing (§6): each flow is assigned to a
// source-destination path chosen uniformly at random — in a Clos network, a
// uniformly random middle switch. This is the long-standing data-center
// default the paper's related-work section measures against.
#pragma once

#include "flow/flow.hpp"
#include "flow/routing.hpp"
#include "net/clos.hpp"
#include "util/rng.hpp"

namespace closfair {

/// A uniformly random middle assignment (1-based middles). On degraded
/// fabrics (fault/fault.hpp) the draw is uniform over each flow's *usable*
/// middles — live uplink and downlink for its ToR pair — matching how ECMP
/// hashes only over surviving next-hops; flows with no usable middle get a
/// uniformly random label and stay starved. On pristine fabrics the seeded
/// stream is bit-identical to the historical one-draw-per-flow generator.
[[nodiscard]] MiddleAssignment ecmp_routing(const ClosNetwork& net, const FlowSet& flows,
                                            Rng& rng);

}  // namespace closfair
