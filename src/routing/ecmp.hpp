// ECMP-style randomized routing (§6): each flow is assigned to a
// source-destination path chosen uniformly at random — in a Clos network, a
// uniformly random middle switch. This is the long-standing data-center
// default the paper's related-work section measures against.
#pragma once

#include "flow/flow.hpp"
#include "flow/routing.hpp"
#include "net/clos.hpp"
#include "util/rng.hpp"

namespace closfair {

/// A uniformly random middle assignment (1-based middles).
[[nodiscard]] MiddleAssignment ecmp_routing(const ClosNetwork& net, const FlowSet& flows,
                                            Rng& rng);

}  // namespace closfair
