#include "routing/replication.hpp"

#include <algorithm>
#include <numeric>

namespace closfair {
namespace {

// Backtracking state over flows sorted by decreasing rate (first-fit
// decreasing order keeps the search shallow: big rates fail fast).
class Search {
 public:
  Search(const ClosNetwork& net, const FlowSet& flows, const std::vector<Rational>& rates,
         const ReplicationOptions& options)
      : net_(net), flows_(flows), rates_(rates), options_(options) {
    const int n = net.num_middles();
    const int tors = net.num_tors();
    up_residual_.assign(static_cast<std::size_t>(tors) * n, Rational{1});
    down_residual_.assign(static_cast<std::size_t>(tors) * n, Rational{1});
    for (int i = 1; i <= tors; ++i) {
      for (int m = 1; m <= n; ++m) {
        up_residual_[up_index(i, m)] = net.topology().link(net.uplink(i, m)).capacity;
        down_residual_[down_index(m, i)] = net.topology().link(net.downlink(m, i)).capacity;
      }
    }
    order_.resize(flows.size());
    std::iota(order_.begin(), order_.end(), FlowIndex{0});
    std::stable_sort(order_.begin(), order_.end(),
                     [&](FlowIndex a, FlowIndex b) { return rates[b] < rates[a]; });
    assignment_.assign(flows.size(), 1);
  }

  ReplicationResult run() {
    ReplicationResult result;
    // Server (edge) links are routing-independent: if any is oversubscribed,
    // no routing helps.
    if (!edge_links_feasible()) {
      result.nodes_explored = nodes_;
      return result;
    }
    result.feasible = place(0, 1);
    result.nodes_explored = nodes_;
    if (result.feasible) result.routing = assignment_;
    return result;
  }

 private:
  [[nodiscard]] std::size_t up_index(int tor, int m) const {
    return static_cast<std::size_t>(tor - 1) * net_.num_middles() + (m - 1);
  }
  [[nodiscard]] std::size_t down_index(int m, int tor) const {
    return static_cast<std::size_t>(m - 1) * net_.num_tors() + (tor - 1);
  }

  [[nodiscard]] bool edge_links_feasible() const {
    std::vector<Rational> src_load(net_.topology().num_links(), Rational{0});
    for (FlowIndex f = 0; f < flows_.size(); ++f) {
      const auto s = net_.source_coord(flows_[f].src);
      const auto t = net_.dest_coord(flows_[f].dst);
      src_load[static_cast<std::size_t>(net_.source_link(s.tor, s.server))] += rates_[f];
      src_load[static_cast<std::size_t>(net_.dest_link(t.tor, t.server))] += rates_[f];
    }
    for (std::size_t l = 0; l < src_load.size(); ++l) {
      const Link& link = net_.topology().link(static_cast<LinkId>(l));
      if (link.unbounded) continue;
      if (link.capacity < src_load[l]) return false;
    }
    return true;
  }

  // Place flows order_[depth..]; `next_fresh` is the lowest middle index not
  // yet used by any placed flow (symmetry canon: middles open in order).
  bool place(std::size_t depth, int next_fresh) {
    if (depth == order_.size()) return true;
    if (++nodes_ > options_.max_nodes) {
      throw ContractViolation("replication search exceeded max_nodes");
    }
    const FlowIndex f = order_[depth];
    const Rational& rate = rates_[f];
    const auto s = net_.source_coord(flows_[f].src);
    const auto t = net_.dest_coord(flows_[f].dst);

    const int middles = options_.restrict_middles > 0
                            ? std::min(options_.restrict_middles, net_.num_middles())
                            : net_.num_middles();
    const int limit = options_.break_symmetry ? std::min(next_fresh, middles) : middles;
    for (int m = 1; m <= limit; ++m) {
      Rational& up = up_residual_[up_index(s.tor, m)];
      Rational& down = down_residual_[down_index(m, t.tor)];
      if (up < rate || down < rate) continue;
      up -= rate;
      down -= rate;
      assignment_[f] = m;
      const int fresh = options_.break_symmetry ? std::max(next_fresh, m + 1) : next_fresh;
      if (place(depth + 1, fresh)) return true;
      up += rate;
      down += rate;
    }
    return false;
  }

  const ClosNetwork& net_;
  const FlowSet& flows_;
  const std::vector<Rational>& rates_;
  const ReplicationOptions& options_;
  std::vector<Rational> up_residual_;
  std::vector<Rational> down_residual_;
  std::vector<FlowIndex> order_;
  MiddleAssignment assignment_;
  std::uint64_t nodes_ = 0;
};

}  // namespace

ReplicationResult find_feasible_routing(const ClosNetwork& net, const FlowSet& flows,
                                        const std::vector<Rational>& rates,
                                        const ReplicationOptions& options) {
  CF_CHECK_MSG(rates.size() == flows.size(),
               "rates cover " << rates.size() << " flows, expected " << flows.size());
  for (const Rational& r : rates) {
    CF_CHECK_MSG(!r.is_negative(), "negative target rate");
  }
  Search search(net, flows, rates, options);
  return search.run();
}

}  // namespace closfair
