// Symmetry-reduced, allocation-free exhaustive search over Clos middle
// assignments — the shared engine behind the three exact optimizers in
// routing/exhaustive.hpp.
//
// Middle switches of the paper's C_n are interchangeable: permuting middle
// labels is a capacity-preserving automorphism whenever
// `ClosNetwork::middles_symmetric()` holds, and relabeling middles leaves
// every flow's max-min rate unchanged. The engine therefore enumerates one
// canonical representative per equivalence class — the restricted-growth
// strings, where each position may exceed the maximum middle index used so
// far by at most 1 — shrinking the candidate set from n^|F| to
// sum_{k<=n} S(|F|, k) (Stirling numbers of the second kind; Bell-number
// scale for n >= |F|). Full-space counts are reconstructed by weighing each
// class by its orbit size n·(n−1)···(n−k+1). Capacity-asymmetric middles
// fall back to the plain odometer.
//
// Each candidate is water-filled through a per-worker WaterfillWorkspace
// (fairness/waterfill.hpp): no Routing is materialized and no heap
// allocation happens per candidate. Parallel runs distribute work over
// enumeration prefixes pulled from an atomic counter; every candidate
// carries a SearchOrder key equal to its serial enumeration position, so
// merges can tie-break deterministically and parallel results are
// bitwise-identical to serial ones.
//
// Degraded fabrics (fault/fault.hpp): dead middles — all uplinks and
// downlinks at zero capacity — are excluded from enumeration entirely. The
// engine searches over the *surviving-middle pool*; a failed middle breaks
// the full middle-relabeling orbit equivalence, but permuting surviving
// labels among themselves is still a capacity-preserving automorphism, so
// canonical enumeration applies whenever the survivors are pairwise
// capacity-symmetric (fault::surviving_middles_symmetric), with orbit sizes
// taken as falling factorials over the pool size. Coverage counts
// (routings_covered) are reported relative to the surviving space
// |pool|^|F|: routing a flow into a dead switch is dropping it, which no
// live routing layer does.
#pragma once

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "fairness/waterfill.hpp"
#include "flow/flow.hpp"
#include "flow/routing.hpp"
#include "net/clos.hpp"
#include "obs/obs.hpp"
#include "obs/trace.hpp"
#include "routing/exhaustive.hpp"

namespace closfair {
namespace detail {

[[nodiscard]] constexpr std::uint64_t sat_add(std::uint64_t a, std::uint64_t b) {
  return a > UINT64_MAX - b ? UINT64_MAX : a + b;
}

[[nodiscard]] constexpr std::uint64_t sat_mul(std::uint64_t a, std::uint64_t b) {
  return b != 0 && a > UINT64_MAX / b ? UINT64_MAX : a * b;
}

}  // namespace detail

/// Position of a candidate in the engine's global enumeration order:
/// (work-unit index, sequence within the unit), lexicographically. Identical
/// for serial and parallel runs, which makes merge tie-breaking match the
/// serial first-found rule exactly.
struct SearchOrder {
  std::uint64_t prefix = 0;
  std::uint64_t seq = 0;
  friend auto operator<=>(const SearchOrder&, const SearchOrder&) = default;
};

/// Number of canonical classes: restricted-growth strings of `length` using
/// at most `max_values` distinct values, i.e. sum_{k<=max_values} S(length, k).
/// Saturates at UINT64_MAX instead of overflowing.
[[nodiscard]] std::uint64_t canonical_class_count(int max_values, std::size_t length);

/// Orbit size of a canonical class using k distinct middles out of n under
/// middle relabeling: the falling factorial n·(n−1)···(n−k+1). Saturating.
[[nodiscard]] std::uint64_t orbit_size(int n, int k);

/// Aggregate statistics of one engine run.
struct SearchStats {
  std::uint64_t waterfill_invocations = 0;  ///< candidates actually evaluated
  std::uint64_t routings_covered = 0;       ///< full/pinned-space equivalent
  std::uint64_t workspace_allocs = 0;       ///< post-bind buffer growth events
  bool canonical = false;                   ///< canonical mode was in effect
};

class SearchEngine {
 public:
  /// Decides the enumeration mode, guards the search-space size against
  /// options.max_routings (throws ContractViolation on blow-up), and carves
  /// the space into prefix work units.
  SearchEngine(const ClosNetwork& net, const FlowSet& flows,
               const ExhaustiveOptions& options);

  [[nodiscard]] bool canonical() const { return canonical_; }
  [[nodiscard]] unsigned num_workers() const { return workers_; }

  /// Enumerates every candidate, water-fills it, and feeds it to the
  /// worker-local visitor: visit(local, middles, rates, order) -> bool,
  /// where `rates` is the exact max-min allocation in flow order (valid only
  /// during the call) and returning false requests a global early stop.
  /// `locals` must hold num_workers() entries; workers never share a local.
  template <typename Local, typename Visit>
  SearchStats run(std::vector<Local>& locals, Visit visit) const {
    CF_CHECK(locals.size() == workers_);
    OBS_SPAN("search.run");
    std::atomic<bool> stop{false};
    std::atomic<std::size_t> next{0};
    std::vector<SearchStats> stats(workers_);

    auto work = [&](unsigned w) {
      OBS_SPAN("search.worker");
      WaterfillWorkspace workspace;
      workspace.bind(net_, flows_);
      workspace.set_force_fallback(force_fallback_);
      MiddleAssignment middles(flows_.size(), 1);
      while (!stop.load(std::memory_order_relaxed)) {
        const std::size_t p = next.fetch_add(1, std::memory_order_relaxed);
        if (p >= prefixes_.size()) break;
        OBS_COUNTER_INC("search.prefix_claims");
        const Prefix& prefix = prefixes_[p];
        std::copy(prefix.values.begin(), prefix.values.end(), middles.begin());
        std::uint64_t seq = 0;
        if (!enumerate_from(middles, prefix_len_, prefix.max_used,
                            static_cast<std::uint64_t>(p), seq, workspace, stats[w],
                            stop, locals[w], visit)) {
          stop.store(true, std::memory_order_relaxed);
        }
      }
      stats[w].workspace_allocs = workspace.steady_state_allocs();
    };

    if (workers_ == 1) {
      work(0);
    } else {
      std::vector<std::thread> pool;
      pool.reserve(workers_);
      for (unsigned w = 0; w < workers_; ++w) pool.emplace_back(work, w);
      for (std::thread& t : pool) t.join();
    }

    SearchStats total;
    total.canonical = canonical_;
    for (const SearchStats& s : stats) {
      total.waterfill_invocations =
          detail::sat_add(total.waterfill_invocations, s.waterfill_invocations);
      total.routings_covered = detail::sat_add(total.routings_covered, s.routings_covered);
      total.workspace_allocs = detail::sat_add(total.workspace_allocs, s.workspace_allocs);
    }
    record_run_metrics(stats, total);
    return total;
  }

 private:
  struct Prefix {
    MiddleAssignment values;  ///< first prefix_len_ positions (actual middle labels)
    int max_used = 0;         ///< max pool index used in `values` (canonical mode)
  };

  /// Registry reporting for one completed run: aggregate work counters
  /// (thread-count-invariant absent early stops), engine-shape gauges, and
  /// the per-worker water-fill distribution. No-op with CLOSFAIR_OBS=OFF.
  void record_run_metrics(const std::vector<SearchStats>& per_worker,
                          const SearchStats& total) const;

  // Depth-first completion of positions [pos, |F|). Values are 1-based
  // *pool indices* mapped through pool_ onto actual middle labels — on a
  // pristine fabric the pool is the identity and the mapping is free. In
  // canonical mode each position ranges over 1..min(|pool|, max_used+1); in
  // odometer mode over 1..|pool|, position 0 pinned under fix_first_ —
  // which the constructor clears, along with canonical_, whenever the
  // surviving pool is capacity-asymmetric. Returns false iff the visitor
  // requested a stop.
  template <typename Local, typename Visit>
  bool enumerate_from(MiddleAssignment& middles, std::size_t pos, int max_used,
                      std::uint64_t prefix_index, std::uint64_t& seq,
                      WaterfillWorkspace& workspace, SearchStats& stats,
                      const std::atomic<bool>& stop, Local& local, Visit& visit) const {
    if (stop.load(std::memory_order_relaxed)) return true;
    if (pos == flows_.size()) {
      ++stats.waterfill_invocations;
      stats.routings_covered = detail::sat_add(
          stats.routings_covered,
          canonical_ ? covered_per_class_[static_cast<std::size_t>(max_used)] : 1);
      const std::vector<Rational>& rates = workspace.max_min_rates(middles);
      return visit(local, middles, rates, SearchOrder{prefix_index, seq++});
    }
    const int hi = canonical_ ? std::min(pool_size_, max_used + 1)
                   : (pos == 0 && fix_first_) ? 1
                                              : pool_size_;
    for (int v = 1; v <= hi; ++v) {
      middles[pos] = pool_[static_cast<std::size_t>(v - 1)];
      if (!enumerate_from(middles, pos + 1, std::max(max_used, v), prefix_index, seq,
                          workspace, stats, stop, local, visit)) {
        return false;
      }
    }
    return true;
  }

  const ClosNetwork& net_;
  const FlowSet& flows_;
  int num_middles_ = 1;
  /// Surviving middles in ascending label order — the enumeration alphabet.
  /// Identity on pristine fabrics; falls back to all middles when every
  /// middle is dead (any assignment is then equally starved).
  std::vector<int> pool_;
  int pool_size_ = 1;
  bool canonical_ = false;
  /// options.fix_first_flow, honored only when the surviving pool is
  /// capacity-symmetric — the pin quotients by a relabeling that must be an
  /// automorphism to be sound.
  bool fix_first_ = false;
  /// options.force_waterfill_fallback, applied to every worker's workspace.
  bool force_fallback_ = false;
  unsigned workers_ = 1;
  std::size_t prefix_len_ = 0;
  std::vector<Prefix> prefixes_;
  /// covered_per_class_[k]: routings a canonical class with k distinct
  /// middles accounts for — orbit_size(|pool|, k), divided by |pool| when
  /// fix_first_flow pins the reported space.
  std::vector<std::uint64_t> covered_per_class_;
};

/// The sum-of-capacities throughput upper bound used by the prune: no
/// routing's total throughput can exceed the capacity sum of the distinct
/// source links (every flow leaves through one) nor of the distinct
/// destination links; the bound is the smaller of the two.
[[nodiscard]] Rational throughput_capacity_bound(const ClosNetwork& net,
                                                 const FlowSet& flows);

}  // namespace closfair
