#include "routing/rearrange.hpp"

#include <algorithm>
#include <numeric>

namespace closfair {

RearrangeResult first_fit_rearrange(const ClosNetwork& net, const FlowSet& flows,
                                    const std::vector<Rational>& rates) {
  CF_CHECK(rates.size() == flows.size());
  for (const Rational& r : rates) CF_CHECK(!r.is_negative());

  const int tors = net.num_tors();
  const int middles = net.num_middles();
  // Residual capacity per (ToR, middle) in both directions.
  std::vector<Rational> up(static_cast<std::size_t>(tors) * middles);
  std::vector<Rational> down(up.size());
  for (int i = 1; i <= tors; ++i) {
    for (int m = 1; m <= middles; ++m) {
      up[static_cast<std::size_t>(i - 1) * middles + (m - 1)] =
          net.topology().link(net.uplink(i, m)).capacity;
      down[static_cast<std::size_t>(m - 1) * tors + (i - 1)] =
          net.topology().link(net.downlink(m, i)).capacity;
    }
  }

  std::vector<FlowIndex> order(flows.size());
  std::iota(order.begin(), order.end(), FlowIndex{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](FlowIndex a, FlowIndex b) { return rates[b] < rates[a]; });

  RearrangeResult result;
  result.assignment.assign(flows.size(), 1);
  for (FlowIndex f : order) {
    const auto s = net.source_coord(flows[f].src);
    const auto t = net.dest_coord(flows[f].dst);
    bool placed = false;
    for (int m = 1; m <= middles; ++m) {
      Rational& u = up[static_cast<std::size_t>(s.tor - 1) * middles + (m - 1)];
      Rational& d = down[static_cast<std::size_t>(m - 1) * tors + (t.tor - 1)];
      if (u < rates[f] || d < rates[f]) continue;
      u -= rates[f];
      d -= rates[f];
      result.assignment[f] = m;
      result.middles_used = std::max(result.middles_used, m);
      placed = true;
      break;
    }
    CF_CHECK_MSG(placed, "first-fit ran out of middle switches ("
                             << middles << " available); give the network more middles");
  }
  return result;
}

std::optional<int> min_middles_exact(const ClosNetwork& net, const FlowSet& flows,
                                     const std::vector<Rational>& rates,
                                     const ReplicationOptions& options) {
  const int lower = middle_count_lower_bound(net, flows, rates);
  for (int m = std::max(lower, 1); m <= net.num_middles(); ++m) {
    ReplicationOptions restricted = options;
    restricted.restrict_middles = m;
    const ReplicationResult r = find_feasible_routing(net, flows, rates, restricted);
    if (r.feasible) return m;
  }
  return std::nullopt;
}

int middle_count_lower_bound(const ClosNetwork& net, const FlowSet& flows,
                             const std::vector<Rational>& rates) {
  CF_CHECK(rates.size() == flows.size());
  // Per-ToR totals in each direction; feasibility needs ceil(total/capacity)
  // middles (uplinks of one ToR all have the same capacity by construction).
  Rational worst{0};
  const int tors = net.num_tors();
  std::vector<Rational> out_total(static_cast<std::size_t>(tors), Rational{0});
  std::vector<Rational> in_total(static_cast<std::size_t>(tors), Rational{0});
  for (FlowIndex f = 0; f < flows.size(); ++f) {
    out_total[static_cast<std::size_t>(net.source_coord(flows[f].src).tor - 1)] += rates[f];
    in_total[static_cast<std::size_t>(net.dest_coord(flows[f].dst).tor - 1)] += rates[f];
  }
  for (int i = 1; i <= tors; ++i) {
    const Rational cap = net.topology().link(net.uplink(i, 1)).capacity;
    if (cap.is_zero()) continue;
    worst = max(worst, out_total[static_cast<std::size_t>(i - 1)] / cap);
    worst = max(worst, in_total[static_cast<std::size_t>(i - 1)] / cap);
  }
  // ceil(worst)
  const std::int64_t whole = worst.num() / worst.den();
  const bool exact = worst.num() % worst.den() == 0;
  return static_cast<int>(whole + (exact ? 0 : 1));
}

}  // namespace closfair
