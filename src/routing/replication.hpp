// Replication feasibility (§4.1): given per-flow target rates (typically the
// macro-switch max-min rates), is there a routing of the Clos network in
// which every flow carries its target rate without violating any link
// capacity?
//
// The decision problem is a bin-packing variant (NP-hard in general); we
// solve it exactly by backtracking with capacity pruning and canonical
// symmetry breaking over the interchangeable middle switches. This is the
// tool that *proves* the Theorem 4.2 instances infeasible by exhausting the
// routing space, and exhibits witness routings for feasible instances.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "flow/flow.hpp"
#include "flow/routing.hpp"
#include "net/clos.hpp"
#include "util/rational.hpp"

namespace closfair {

struct ReplicationOptions {
  /// Abort (throw ContractViolation) after this many backtracking nodes.
  std::uint64_t max_nodes = 200'000'000;

  /// Canonical symmetry breaking: a flow may only open middle switch m+1
  /// after some earlier flow uses middle m. Sound because middles are
  /// interchangeable; prunes factorially many equivalent assignments.
  bool break_symmetry = true;

  /// Use only middles 1..restrict_middles (0 = all of them). The multirate
  /// rearrangeability machinery (routing/rearrange.hpp) binary-searches the
  /// minimum middle count with this knob.
  int restrict_middles = 0;
};

struct ReplicationResult {
  bool feasible = false;
  std::optional<MiddleAssignment> routing;  ///< witness when feasible
  std::uint64_t nodes_explored = 0;
};

/// Decide whether `rates` can be routed feasibly in `net`. Rates must be
/// non-negative; flows with zero rate are trivially routable anywhere.
[[nodiscard]] ReplicationResult find_feasible_routing(const ClosNetwork& net,
                                                      const FlowSet& flows,
                                                      const std::vector<Rational>& rates,
                                                      const ReplicationOptions& options = {});

}  // namespace closfair
