// Local-search routing (§6): starting from an initial assignment, repeatedly
// move single flows between middle switches while the move improves an
// objective. Two objectives are provided:
//
//  * congestion descent — minimize the maximum link congestion given demands
//    (the classic traffic-engineering objective the paper's related work
//    optimizes);
//  * lexicographic max-min ascent — move flows while the *sorted vector of
//    the resulting max-min fair allocation* improves lexicographically; this
//    is a practical hill-climbing heuristic toward a lex-max-min fair
//    allocation (Definition 2.4), usable where exhaustive search
//    (routing/exhaustive.hpp) is out of reach.
#pragma once

#include <vector>

#include "flow/allocation.hpp"
#include "flow/flow.hpp"
#include "flow/routing.hpp"
#include "net/clos.hpp"
#include "util/rng.hpp"

namespace closfair {

struct LocalSearchOptions {
  /// Maximum single-flow moves before giving up on convergence.
  std::size_t max_moves = 10'000;
};

/// Congestion descent: returns a locally optimal assignment under "minimize
/// max path congestion, then total squared link load" for the given demands.
[[nodiscard]] MiddleAssignment congestion_local_search(const ClosNetwork& net,
                                                       const FlowSet& flows,
                                                       const std::vector<double>& demands,
                                                       MiddleAssignment start,
                                                       const LocalSearchOptions& options = {});

struct LexSearchResult {
  MiddleAssignment middles;
  Allocation<Rational> alloc;  ///< max-min fair allocation for `middles`
  std::size_t moves = 0;       ///< accepted moves
};

/// Lexicographic max-min hill climbing: accepts any single-flow move whose
/// max-min fair allocation is lexicographically greater. Exact (Rational).
[[nodiscard]] LexSearchResult lex_max_min_local_search(const ClosNetwork& net,
                                                       const FlowSet& flows,
                                                       MiddleAssignment start,
                                                       const LocalSearchOptions& options = {});

/// Multi-restart wrapper: `restarts` random initial assignments, keeping the
/// lexicographically best local optimum.
[[nodiscard]] LexSearchResult lex_max_min_multistart(const ClosNetwork& net,
                                                     const FlowSet& flows, Rng& rng,
                                                     std::size_t restarts,
                                                     const LocalSearchOptions& options = {});

/// Throughput hill climbing: accepts single-flow moves that increase the
/// throughput of the max-min fair allocation (toward Definition 2.5); ties
/// broken lexicographically.
[[nodiscard]] LexSearchResult throughput_max_min_local_search(
    const ClosNetwork& net, const FlowSet& flows, MiddleAssignment start,
    const LocalSearchOptions& options = {});

}  // namespace closfair
