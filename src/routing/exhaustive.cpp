#include "routing/exhaustive.hpp"

#include <atomic>
#include <thread>
#include <algorithm>
#include <utility>

#include "fairness/waterfill.hpp"

namespace closfair {
namespace {

// Odometer-style enumeration of middle assignments, invoking `visit` for
// each. Returns the number of assignments visited; `visit` returning false
// stops the enumeration. When pin_last > 0 the last flow's middle is fixed
// to that value (used by the parallel partitioning) and excluded from the
// odometer.
template <typename Visit>
std::uint64_t enumerate(const ClosNetwork& net, std::size_t num_flows,
                        const ExhaustiveOptions& options, Visit visit, int pin_last = 0) {
  const int n = net.num_middles();
  const std::size_t fixed_prefix = (options.fix_first_flow && num_flows > 0) ? 1 : 0;
  const std::size_t free_end = (pin_last > 0 && num_flows > 0) ? num_flows - 1 : num_flows;

  // Guard the search-space size before starting.
  std::uint64_t space = 1;
  for (std::size_t f = fixed_prefix; f < free_end; ++f) {
    CF_CHECK_MSG(space <= options.max_routings / static_cast<std::uint64_t>(n),
                 "routing space " << n << "^" << (free_end - fixed_prefix)
                                  << " exceeds max_routings " << options.max_routings);
    space *= static_cast<std::uint64_t>(n);
  }

  MiddleAssignment middles(num_flows, 1);
  if (pin_last > 0 && num_flows > 0) middles[num_flows - 1] = pin_last;
  std::uint64_t visited = 0;
  while (true) {
    ++visited;
    if (!visit(middles)) return visited;
    // Increment the odometer over positions [fixed_prefix, free_end).
    std::size_t pos = fixed_prefix;
    while (pos < free_end) {
      if (middles[pos] < n) {
        ++middles[pos];
        break;
      }
      middles[pos] = 1;
      ++pos;
    }
    if (pos >= free_end) return visited;
  }
}

}  // namespace

namespace {

// Serial lex search over one pinned-last-slice of the space (pin_last = 0
// means the whole space). `stop` lets parallel siblings cancel each other
// once stop_at_sorted is reached.
struct LexLocal {
  bool have = false;
  ExactRoutingResult result;
  std::vector<Rational> sorted;
};

void lex_search_slice(const ClosNetwork& net, const FlowSet& flows,
                      const ExhaustiveOptions& options, int pin_last, LexLocal& local,
                      std::atomic<bool>& stop) {
  local.result.routings_evaluated +=
      enumerate(
          net, flows.size(), options,
          [&](const MiddleAssignment& middles) {
            if (stop.load(std::memory_order_relaxed)) return false;
            Allocation<Rational> alloc = max_min_fair<Rational>(net, flows, middles);
            std::vector<Rational> sorted = alloc.sorted();
            if (!local.have ||
                lex_compare(sorted, local.sorted) == std::strong_ordering::greater) {
              local.have = true;
              local.result.middles = middles;
              local.result.alloc = std::move(alloc);
              local.sorted = std::move(sorted);
              if (options.stop_at_sorted &&
                  lex_compare(local.sorted, *options.stop_at_sorted) !=
                      std::strong_ordering::less) {
                stop.store(true, std::memory_order_relaxed);
                return false;  // provably optimal
              }
            }
            return true;
          },
          pin_last);
}

}  // namespace

ExactRoutingResult lex_max_min_exhaustive(const ClosNetwork& net, const FlowSet& flows,
                                          const ExhaustiveOptions& options) {
  std::atomic<bool> stop{false};
  const unsigned threads =
      flows.size() >= 2 ? std::max(1u, options.num_threads) : 1u;

  if (threads == 1) {
    LexLocal local;
    lex_search_slice(net, flows, options, /*pin_last=*/0, local, stop);
    CF_CHECK_MSG(local.have, "empty flow collection has no lex-max-min routing");
    return std::move(local.result);
  }

  // Partition by the last flow's middle; workers take values round-robin.
  std::vector<LexLocal> locals(threads);
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (unsigned w = 0; w < threads; ++w) {
    pool.emplace_back([&, w] {
      for (int v = 1 + static_cast<int>(w); v <= net.num_middles();
           v += static_cast<int>(threads)) {
        if (stop.load(std::memory_order_relaxed)) break;
        lex_search_slice(net, flows, options, v, locals[w], stop);
      }
    });
  }
  for (auto& t : pool) t.join();

  LexLocal merged;
  for (LexLocal& local : locals) {
    merged.result.routings_evaluated += local.result.routings_evaluated;
    if (local.have &&
        (!merged.have ||
         lex_compare(local.sorted, merged.sorted) == std::strong_ordering::greater)) {
      merged.have = true;
      merged.result.middles = std::move(local.result.middles);
      merged.result.alloc = std::move(local.result.alloc);
      merged.sorted = std::move(local.sorted);
    }
  }
  CF_CHECK_MSG(merged.have, "empty flow collection has no lex-max-min routing");
  return std::move(merged.result);
}

ExactRoutingResult throughput_max_min_exhaustive(const ClosNetwork& net,
                                                 const FlowSet& flows,
                                                 const ExhaustiveOptions& options) {
  ExactRoutingResult best;
  bool have_best = false;
  Rational best_throughput{0};
  std::vector<Rational> best_sorted;

  best.routings_evaluated =
      enumerate(net, flows.size(), options, [&](const MiddleAssignment& middles) {
        Allocation<Rational> alloc = max_min_fair<Rational>(net, flows, middles);
        const Rational throughput = alloc.throughput();
        bool take = !have_best || best_throughput < throughput;
        if (have_best && throughput == best_throughput) {
          take = lex_compare(alloc.sorted(), best_sorted) == std::strong_ordering::greater;
        }
        if (take) {
          have_best = true;
          best.middles = middles;
          best_sorted = alloc.sorted();
          best.alloc = std::move(alloc);
          best_throughput = throughput;
        }
        return true;
      });
  CF_CHECK_MSG(have_best, "empty flow collection has no throughput-max-min routing");
  return best;
}

std::vector<ParetoPoint> throughput_fairness_frontier(const ClosNetwork& net,
                                                      const FlowSet& flows,
                                                      const ExhaustiveOptions& options) {
  // Collect candidate (throughput, min rate) points, then prune dominated
  // ones. Deduplicate on the fly by keeping, per throughput value seen, only
  // the best min rate (the candidate map stays small).
  std::vector<ParetoPoint> candidates;
  enumerate(net, flows.size(), options, [&](const MiddleAssignment& middles) {
    const Allocation<Rational> alloc = max_min_fair<Rational>(net, flows, middles);
    ParetoPoint point;
    point.throughput = alloc.throughput();
    point.min_rate = flows.empty() ? Rational{0} : alloc.sorted().front();
    for (ParetoPoint& existing : candidates) {
      if (existing.throughput == point.throughput) {
        if (existing.min_rate < point.min_rate) {
          existing.min_rate = point.min_rate;
          existing.middles = middles;
        }
        return true;
      }
    }
    point.middles = middles;
    candidates.push_back(std::move(point));
    return true;
  });

  std::sort(candidates.begin(), candidates.end(),
            [](const ParetoPoint& a, const ParetoPoint& b) {
              return a.throughput < b.throughput;
            });
  // Sweep from the high-throughput end: keep points whose min rate strictly
  // exceeds everything to their right.
  std::vector<ParetoPoint> frontier;
  Rational best_min{-1};
  for (auto it = candidates.rbegin(); it != candidates.rend(); ++it) {
    if (best_min < it->min_rate) {
      best_min = it->min_rate;
      frontier.push_back(std::move(*it));
    }
  }
  std::reverse(frontier.begin(), frontier.end());
  return frontier;
}

}  // namespace closfair
