#include "routing/exhaustive.hpp"

#include <algorithm>
#include <unordered_map>
#include <utility>

#include "obs/obs.hpp"
#include "obs/trace.hpp"
#include "routing/search_engine.hpp"

namespace closfair {
namespace {

// Per-worker state of the lex-max-min search. `scratch` is the reused sort
// buffer, so steady-state candidates allocate nothing.
struct LexLocal {
  bool have = false;
  MiddleAssignment middles;
  std::vector<Rational> rates;
  std::vector<Rational> sorted;
  SearchOrder order;
  std::vector<Rational> scratch;
};

// Per-worker state of the throughput-max-min search.
struct TputLocal {
  bool have = false;
  Rational throughput{0};
  MiddleAssignment middles;
  std::vector<Rational> rates;
  std::vector<Rational> sorted;
  SearchOrder order;
  std::vector<Rational> scratch;
};

// Per-worker state of the frontier sweep: per throughput value seen, the
// best (min rate, earliest order) candidate. Keyed on the hashable Rational
// so dedup is O(1) per candidate instead of a linear scan.
struct FrontierCandidate {
  Rational min_rate{0};
  MiddleAssignment middles;
  SearchOrder order;
};
struct FrontierLocal {
  std::unordered_map<Rational, FrontierCandidate> by_throughput;
};

}  // namespace

ExactRoutingResult lex_max_min_exhaustive(const ClosNetwork& net, const FlowSet& flows,
                                          const ExhaustiveOptions& options) {
  const SearchEngine engine(net, flows, options);
  std::vector<LexLocal> locals(engine.num_workers());
  const SearchStats stats = engine.run(
      locals, [&options](LexLocal& local, const MiddleAssignment& middles,
                         const std::vector<Rational>& rates, SearchOrder order) {
        local.scratch.assign(rates.begin(), rates.end());
        std::sort(local.scratch.begin(), local.scratch.end());
        if (!local.have ||
            lex_compare(local.scratch, local.sorted) == std::strong_ordering::greater) {
          local.have = true;
          local.middles = middles;
          local.rates.assign(rates.begin(), rates.end());
          local.sorted.swap(local.scratch);
          local.order = order;
          OBS_COUNTER_INC("search.lex_improvements");
          if (options.stop_at_sorted &&
              lex_compare(local.sorted, *options.stop_at_sorted) !=
                  std::strong_ordering::less) {
            OBS_COUNTER_INC("search.lex_early_stops");
            return false;  // provably optimal
          }
        }
        return true;
      });

  // Deterministic merge: greatest sorted vector, ties broken by earliest
  // enumeration order — the candidate a serial scan would have kept.
  OBS_SPAN("search.merge");
  LexLocal* best = nullptr;
  for (LexLocal& local : locals) {
    if (!local.have) continue;
    if (best == nullptr) {
      best = &local;
      continue;
    }
    const auto cmp = lex_compare(local.sorted, best->sorted);
    if (cmp == std::strong_ordering::greater ||
        (cmp == std::strong_ordering::equal && local.order < best->order)) {
      best = &local;
    }
  }
  CF_CHECK_MSG(best != nullptr, "empty flow collection has no lex-max-min routing");

  ExactRoutingResult result;
  result.middles = std::move(best->middles);
  result.alloc = Allocation<Rational>(std::move(best->rates));
  result.routings_evaluated = stats.routings_covered;
  result.waterfill_invocations = stats.waterfill_invocations;
  return result;
}

ExactRoutingResult throughput_max_min_exhaustive(const ClosNetwork& net,
                                                 const FlowSet& flows,
                                                 const ExhaustiveOptions& options) {
  const SearchEngine engine(net, flows, options);
  const Rational bound = options.prune_throughput_bound
                             ? throughput_capacity_bound(net, flows)
                             : Rational{0};
  std::vector<TputLocal> locals(engine.num_workers());
  const SearchStats stats = engine.run(
      locals, [&options, &bound](TputLocal& local, const MiddleAssignment& middles,
                                 const std::vector<Rational>& rates, SearchOrder order) {
        Rational throughput{0};
        for (const Rational& r : rates) throughput += r;
        bool take = !local.have || local.throughput < throughput;
        if (!take && local.have && throughput == local.throughput) {
          local.scratch.assign(rates.begin(), rates.end());
          std::sort(local.scratch.begin(), local.scratch.end());
          take = lex_compare(local.scratch, local.sorted) == std::strong_ordering::greater;
          if (take) {
            local.middles = middles;
            local.rates.assign(rates.begin(), rates.end());
            local.sorted.swap(local.scratch);
            local.order = order;
          }
          return true;
        }
        if (take) {
          local.have = true;
          local.throughput = throughput;
          local.middles = middles;
          local.rates.assign(rates.begin(), rates.end());
          local.scratch.assign(rates.begin(), rates.end());
          std::sort(local.scratch.begin(), local.scratch.end());
          local.sorted.swap(local.scratch);
          local.order = order;
          // Sum-of-capacities prune: nothing can beat the bound, so attaining
          // it proves throughput optimality (the lex tie-break then settles
          // for this witness).
          if (options.prune_throughput_bound && throughput == bound) {
            OBS_COUNTER_INC("search.prune_bound_hits");
            return false;
          }
        }
        return true;
      });

  // Deterministic merge: highest throughput, then greatest sorted vector,
  // then earliest enumeration order.
  OBS_SPAN("search.merge");
  TputLocal* best = nullptr;
  for (TputLocal& local : locals) {
    if (!local.have) continue;
    if (best == nullptr) {
      best = &local;
      continue;
    }
    bool take = best->throughput < local.throughput;
    if (!take && local.throughput == best->throughput) {
      const auto cmp = lex_compare(local.sorted, best->sorted);
      take = cmp == std::strong_ordering::greater ||
             (cmp == std::strong_ordering::equal && local.order < best->order);
    }
    if (take) best = &local;
  }
  CF_CHECK_MSG(best != nullptr, "empty flow collection has no throughput-max-min routing");

  ExactRoutingResult result;
  result.middles = std::move(best->middles);
  result.alloc = Allocation<Rational>(std::move(best->rates));
  result.routings_evaluated = stats.routings_covered;
  result.waterfill_invocations = stats.waterfill_invocations;
  return result;
}

std::vector<ParetoPoint> throughput_fairness_frontier(const ClosNetwork& net,
                                                      const FlowSet& flows,
                                                      const ExhaustiveOptions& options) {
  const SearchEngine engine(net, flows, options);
  std::vector<FrontierLocal> locals(engine.num_workers());
  engine.run(locals, [](FrontierLocal& local, const MiddleAssignment& middles,
                        const std::vector<Rational>& rates, SearchOrder order) {
    Rational throughput{0};
    bool first = true;
    Rational min_rate{0};
    for (const Rational& r : rates) {
      throughput += r;
      if (first || r < min_rate) min_rate = r;
      first = false;
    }
    auto [it, inserted] =
        local.by_throughput.try_emplace(throughput, FrontierCandidate{min_rate, middles, order});
    if (!inserted && (it->second.min_rate < min_rate ||
                      (it->second.min_rate == min_rate && order < it->second.order))) {
      it->second = FrontierCandidate{min_rate, middles, order};
    }
    return true;
  });

  // Merge the per-worker candidate maps with the same (min rate, order) rule.
  OBS_SPAN("search.merge");
  std::unordered_map<Rational, FrontierCandidate> merged;
  for (FrontierLocal& local : locals) {
    for (auto& [throughput, cand] : local.by_throughput) {
      auto [it, inserted] = merged.try_emplace(throughput, cand);
      if (!inserted && (it->second.min_rate < cand.min_rate ||
                        (it->second.min_rate == cand.min_rate &&
                         cand.order < it->second.order))) {
        it->second = cand;
      }
    }
  }

  std::vector<ParetoPoint> candidates;
  candidates.reserve(merged.size());
  for (auto& [throughput, cand] : merged) {
    candidates.push_back(ParetoPoint{throughput, cand.min_rate, std::move(cand.middles)});
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const ParetoPoint& a, const ParetoPoint& b) {
              return a.throughput < b.throughput;
            });
  // Sweep from the high-throughput end: keep points whose min rate strictly
  // exceeds everything to their right.
  std::vector<ParetoPoint> frontier;
  Rational best_min{-1};
  for (auto it = candidates.rbegin(); it != candidates.rend(); ++it) {
    if (best_min < it->min_rate) {
      best_min = it->min_rate;
      frontier.push_back(std::move(*it));
    }
  }
  std::reverse(frontier.begin(), frontier.end());
  return frontier;
}

}  // namespace closfair
