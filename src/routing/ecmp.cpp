#include "routing/ecmp.hpp"

namespace closfair {

MiddleAssignment ecmp_routing(const ClosNetwork& net, const FlowSet& flows, Rng& rng) {
  MiddleAssignment middles(flows.size());
  for (auto& m : middles) {
    m = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(net.num_middles()))) + 1;
  }
  return middles;
}

}  // namespace closfair
