#include "routing/ecmp.hpp"

#include "fault/fault.hpp"

namespace closfair {

MiddleAssignment ecmp_routing(const ClosNetwork& net, const FlowSet& flows, Rng& rng) {
  const int n = net.num_middles();
  MiddleAssignment middles(flows.size());

  // Pristine fast path: no dead fabric link means every middle is usable for
  // every flow, and one draw per flow keeps seeded runs bit-identical to the
  // historical generator.
  if (!fault::has_dead_fabric_links(net)) {
    for (auto& m : middles) {
      m = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(n))) + 1;
    }
    return middles;
  }

  std::vector<int> usable;
  usable.reserve(static_cast<std::size_t>(n));
  for (FlowIndex f = 0; f < flows.size(); ++f) {
    const ClosNetwork::ServerCoord s = net.source_coord(flows[f].src);
    const ClosNetwork::ServerCoord t = net.dest_coord(flows[f].dst);
    usable.clear();
    for (int m = 1; m <= n; ++m) {
      if (fault::middle_usable(net, s.tor, t.tor, m)) usable.push_back(m);
    }
    if (usable.empty()) {
      // Every path is dead; the flow is starved regardless, so any label works.
      middles[f] = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(n))) + 1;
    } else {
      middles[f] =
          usable[static_cast<std::size_t>(rng.next_below(usable.size()))];
    }
  }
  return middles;
}

}  // namespace closfair
