// Exact routing-objective optimizers by exhaustive enumeration.
//
// A Clos routing is a middle assignment in [n]^|F|, so for small instances we
// can find true lex-max-min fair (Definition 2.4) and throughput-max-min fair
// (Definition 2.5) allocations by enumerating every routing and water-filling
// each one. This is how the test suite verifies the paper's optimality claims
// (Lemma 4.6 step 2, Example 2.3) *by search* rather than by trusting the
// constructions.
//
// Middle switches are interchangeable (any permutation of middles is a
// topology automorphism), so assignments only need enumerating up to middle
// relabeling: the search engine (routing/search_engine.hpp) visits one
// canonical representative per equivalence class — a restricted-growth
// string — and reconstructs full-space counts from orbit sizes. The legacy
// odometer with its `fix_first_flow` pin remains as the fallback for
// capacity-asymmetric middles.
#pragma once

#include <cstdint>
#include <optional>

#include "flow/allocation.hpp"
#include "flow/flow.hpp"
#include "flow/routing.hpp"
#include "net/clos.hpp"

namespace closfair {

struct ExhaustiveOptions {
  /// Abort (throw ContractViolation) if the enumeration would water-fill
  /// more than this many candidates. Guards against accidentally launching
  /// an n^|F| blow-up; with canonical enumeration the bound applies to the
  /// (much smaller) canonical class count.
  std::uint64_t max_routings = 50'000'000;

  /// Pin flow 0 to the first surviving middle in odometer mode. Sound only
  /// when the surviving pool is capacity-interchangeable, so — like the
  /// canonical quotient — the pin is ignored whenever
  /// `fault::surviving_middles_symmetric` is false (e.g. a single dead
  /// uplink with its middle otherwise alive): the engine then enumerates
  /// flow 0 over the whole pool. In canonical mode the pin is implied by the
  /// enumeration; the flag then only selects whether `routings_evaluated`
  /// reports the pinned (n^(|F|-1)-scale) or the full (n^|F|-scale) space,
  /// keeping counts comparable with odometer runs under the same setting.
  bool fix_first_flow = true;

  /// Enumerate one canonical representative per middle-relabeling class
  /// (restricted-growth strings) instead of the full odometer. Requires
  /// capacity-symmetric middles over the *surviving* pool: dead middles
  /// (fault/fault.hpp) are excluded from enumeration entirely, and the
  /// quotient is taken over surviving labels only. Automatically falls back
  /// to the odometer (still over the surviving pool) when
  /// `fault::surviving_middles_symmetric` is false — on pristine fabrics
  /// this is exactly the old `ClosNetwork::middles_symmetric()` gate.
  bool exploit_middle_symmetry = true;

  /// Worker threads (1 = serial) for all three searches. Work is distributed
  /// over enumeration prefixes; each worker keeps a local best and results
  /// merge with deterministic tie-breaking (enumeration order), so parallel
  /// results are bitwise-identical to serial ones. Early-exit options are
  /// honored via an atomic flag (workers may overshoot slightly;
  /// routings_evaluated counts all visits across workers).
  unsigned num_threads = 1;

  /// Stop early if this sorted vector is reached: no feasible Clos allocation
  /// can lexicographically exceed the macro-switch max-min sorted vector
  /// (§2.3), so reaching it proves optimality. Applies to lex search only.
  std::optional<std::vector<Rational>> stop_at_sorted;

  /// Route every candidate evaluation onto the exact Rational water-fill
  /// engine, bypassing the int64 fixed-denominator fast path even when it is
  /// available. Results are byte-identical either way (the fast path falls
  /// back on overflow and is differential-tested against the Rational
  /// engine); this flag exists for those differential tests and for
  /// fallback-engine benchmarks, not for production use.
  bool force_waterfill_fallback = false;

  /// Throughput search only: stop once a routing attains the sum-of-
  /// capacities upper bound (min over the distinct source / destination
  /// links' capacity sums — no routing can exceed either). The returned
  /// throughput is still exact; among equal-throughput optima the witness
  /// may then be any bound-attaining routing rather than the first in
  /// enumeration order.
  bool prune_throughput_bound = true;
};

struct ExactRoutingResult {
  MiddleAssignment middles;
  Allocation<Rational> alloc;           ///< max-min fair allocation for `middles`

  /// Routings covered, reported in full-space-equivalent terms: canonical
  /// searches multiply each visited class by its orbit size (divided by the
  /// pool size under fix_first_flow), so the count matches what an odometer
  /// run with the same fix_first_flow setting would report. On degraded
  /// fabrics the space is the surviving-middle pool's |pool|^|F|, not
  /// n^|F| — dead middles are never enumerated.
  std::uint64_t routings_evaluated = 0;

  /// Candidates actually water-filled — the real work done. With canonical
  /// enumeration this is the visited class count, orders of magnitude below
  /// routings_evaluated.
  std::uint64_t waterfill_invocations = 0;
};

/// True lex-max-min fair allocation by enumeration (exact, exponential).
[[nodiscard]] ExactRoutingResult lex_max_min_exhaustive(const ClosNetwork& net,
                                                        const FlowSet& flows,
                                                        const ExhaustiveOptions& options = {});

/// True throughput-max-min fair allocation by enumeration (exact,
/// exponential). Lexicographic tie-break among equal-throughput routings.
[[nodiscard]] ExactRoutingResult throughput_max_min_exhaustive(
    const ClosNetwork& net, const FlowSet& flows, const ExhaustiveOptions& options = {});

/// One Pareto-optimal point of the routing space under the paper's two
/// competing objectives (Q3): total throughput vs the worst-off flow's rate.
struct ParetoPoint {
  Rational throughput{0};
  Rational min_rate{0};
  MiddleAssignment middles;  ///< a witness routing achieving this point
};

/// The exact throughput-vs-min-rate Pareto frontier over ALL routings
/// (exponential; guarded by options.max_routings). Points are returned
/// sorted by increasing throughput (hence non-increasing min rate), each
/// non-dominated: no routing is at least as good on both axes and better on
/// one. The frontier's two endpoints relate to the paper's objectives: the
/// max-min-rate end contains the lex-max-min routing's point, the
/// max-throughput end the throughput-max-min routing's.
[[nodiscard]] std::vector<ParetoPoint> throughput_fairness_frontier(
    const ClosNetwork& net, const FlowSet& flows, const ExhaustiveOptions& options = {});

}  // namespace closfair
