// Exact routing-objective optimizers by exhaustive enumeration.
//
// A Clos routing is a middle assignment in [n]^|F|, so for small instances we
// can find true lex-max-min fair (Definition 2.4) and throughput-max-min fair
// (Definition 2.5) allocations by enumerating every routing and water-filling
// each one. This is how the test suite verifies the paper's optimality claims
// (Lemma 4.6 step 2, Example 2.3) *by search* rather than by trusting the
// constructions.
//
// Middle switches are interchangeable (any permutation of middles is a
// topology automorphism), so the first flow can be pinned to M_1, cutting the
// space by a factor n; enable via `fix_first_flow`.
#pragma once

#include <cstdint>
#include <optional>

#include "flow/allocation.hpp"
#include "flow/flow.hpp"
#include "flow/routing.hpp"
#include "net/clos.hpp"

namespace closfair {

struct ExhaustiveOptions {
  /// Abort (throw ContractViolation) if the enumeration would exceed this
  /// many routings. Guards against accidentally launching an n^|F| blow-up.
  std::uint64_t max_routings = 50'000'000;

  /// Pin flow 0 to middle 1 (sound by middle-switch symmetry).
  bool fix_first_flow = true;

  /// Worker threads for lex_max_min_exhaustive (1 = serial). The space is
  /// partitioned by the last flow's middle; each worker keeps a local best
  /// and the results merge lexicographically, so the answer is identical to
  /// the serial one. stop_at_sorted early exit is honored via an atomic
  /// flag (workers may overshoot slightly; routings_evaluated counts all
  /// visits across workers).
  unsigned num_threads = 1;

  /// Stop early if this sorted vector is reached: no feasible Clos allocation
  /// can lexicographically exceed the macro-switch max-min sorted vector
  /// (§2.3), so reaching it proves optimality. Applies to lex search only.
  std::optional<std::vector<Rational>> stop_at_sorted;
};

struct ExactRoutingResult {
  MiddleAssignment middles;
  Allocation<Rational> alloc;           ///< max-min fair allocation for `middles`
  std::uint64_t routings_evaluated = 0;
};

/// True lex-max-min fair allocation by enumeration (exact, exponential).
[[nodiscard]] ExactRoutingResult lex_max_min_exhaustive(const ClosNetwork& net,
                                                        const FlowSet& flows,
                                                        const ExhaustiveOptions& options = {});

/// True throughput-max-min fair allocation by enumeration (exact,
/// exponential). Lexicographic tie-break among equal-throughput routings.
[[nodiscard]] ExactRoutingResult throughput_max_min_exhaustive(
    const ClosNetwork& net, const FlowSet& flows, const ExhaustiveOptions& options = {});

/// One Pareto-optimal point of the routing space under the paper's two
/// competing objectives (Q3): total throughput vs the worst-off flow's rate.
struct ParetoPoint {
  Rational throughput{0};
  Rational min_rate{0};
  MiddleAssignment middles;  ///< a witness routing achieving this point
};

/// The exact throughput-vs-min-rate Pareto frontier over ALL routings
/// (exponential; guarded by options.max_routings). Points are returned
/// sorted by increasing throughput (hence non-increasing min rate), each
/// non-dominated: no routing is at least as good on both axes and better on
/// one. The frontier's two endpoints relate to the paper's objectives: the
/// max-min-rate end contains the lex-max-min routing's point, the
/// max-throughput end the throughput-max-min routing's.
[[nodiscard]] std::vector<ParetoPoint> throughput_fairness_frontier(
    const ClosNetwork& net, const FlowSet& flows, const ExhaustiveOptions& options = {});

}  // namespace closfair
