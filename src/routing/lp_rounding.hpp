// Randomized rounding of the splittable optimum (Raghavan–Thompson style).
//
// The splittable max-min allocation (lp/splittable.hpp) carries each flow
// fractionally over the middles. Rounding samples one middle per flow with
// probability proportional to its fractional share, yielding an unsplittable
// routing whose expected link loads equal the fractional ones — a principled
// middle ground between ECMP (ignores structure) and exhaustive search
// (exponential). `best_of` rounds repeatedly and keeps the draw whose
// max-min allocation is lexicographically best.
#pragma once

#include <vector>

#include "flow/flow.hpp"
#include "flow/routing.hpp"
#include "lp/splittable.hpp"
#include "net/clos.hpp"
#include "util/rng.hpp"

namespace closfair {

/// One rounded routing: sample middle m for flow f with probability
/// shares[f][m-1] / rate_f (flows with zero rate go to middle 1).
[[nodiscard]] MiddleAssignment round_splittable(const SplittableMaxMin& splittable,
                                                Rng& rng);

struct RoundingResult {
  MiddleAssignment middles;
  Allocation<Rational> alloc;  ///< max-min allocation of the kept draw
  std::size_t draws = 0;
};

/// Round `attempts` times and keep the lexicographically best max-min
/// outcome. attempts >= 1.
[[nodiscard]] RoundingResult round_splittable_best_of(const ClosNetwork& net,
                                                      const FlowSet& flows,
                                                      const SplittableMaxMin& splittable,
                                                      Rng& rng, std::size_t attempts = 8);

}  // namespace closfair
