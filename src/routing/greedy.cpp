#include "routing/greedy.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

namespace closfair {
namespace {

// Place flows one at a time in the given order; for each, pick the middle
// whose path has the lowest resulting max-congestion.
MiddleAssignment place(const ClosNetwork& net, const FlowSet& flows,
                       const std::vector<double>& demands,
                       const std::vector<std::size_t>& order) {
  const auto& topo = net.topology();
  std::vector<double> load(topo.num_links(), 0.0);
  MiddleAssignment middles(flows.size(), 1);

  for (std::size_t idx : order) {
    const Flow& flow = flows[idx];
    int best_middle = 1;
    double best_congestion = 0.0;
    bool first = true;
    for (int m = 1; m <= net.num_middles(); ++m) {
      const Path path = net.path(flow.src, flow.dst, m);
      double congestion = 0.0;
      for (LinkId l : path) {
        const Link& link = topo.link(l);
        if (link.unbounded) continue;
        const double cap = link.capacity.to_double();
        if (cap == 0.0) {
          // Dead link (fault/fault.hpp mask): infinitely congested, never a
          // 0/0 NaN even for zero-demand flows. Chosen only if every path of
          // this flow is dead.
          congestion = std::numeric_limits<double>::infinity();
          break;
        }
        const double c = (load[static_cast<std::size_t>(l)] + demands[idx]) / cap;
        congestion = std::max(congestion, c);
      }
      if (first || congestion < best_congestion) {
        first = false;
        best_congestion = congestion;
        best_middle = m;
      }
    }
    middles[idx] = best_middle;
    for (LinkId l : net.path(flow.src, flow.dst, best_middle)) {
      load[static_cast<std::size_t>(l)] += demands[idx];
    }
  }
  return middles;
}

}  // namespace

MiddleAssignment greedy_routing(const ClosNetwork& net, const FlowSet& flows,
                                const std::vector<double>& demands,
                                const GreedyOptions& options) {
  CF_CHECK_MSG(demands.size() == flows.size(),
               "demands cover " << demands.size() << " flows, expected " << flows.size());
  std::vector<std::size_t> order(flows.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  if (options.sort_by_demand) {
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) { return demands[a] > demands[b]; });
  }
  return place(net, flows, demands, order);
}

MiddleAssignment greedy_routing_unit(const ClosNetwork& net, const FlowSet& flows) {
  std::vector<double> unit(flows.size(), 1.0);
  std::vector<std::size_t> order(flows.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  return place(net, flows, unit, order);
}

}  // namespace closfair
