#include "routing/doom_switch.hpp"

#include <algorithm>

#include "matching/edge_coloring.hpp"
#include "matching/flow_graphs.hpp"
#include "matching/hopcroft_karp.hpp"

namespace closfair {

DoomSwitchResult doom_switch(const ClosNetwork& net, const FlowSet& flows) {
  const int n = net.num_middles();

  // Step 1: maximum matching F' in G^MS (edge index == flow index).
  const BipartiteMultigraph g_ms = server_flow_graph(net, flows);
  const std::vector<std::size_t> matched_edges = maximum_matching(g_ms);

  // Step 2: n-color G^C restricted to F'. Build the restricted switch graph,
  // remembering which flow each restricted edge came from.
  BipartiteMultigraph g_c(static_cast<std::size_t>(net.num_tors()),
                          static_cast<std::size_t>(net.num_tors()));
  std::vector<FlowIndex> edge_to_flow;
  edge_to_flow.reserve(matched_edges.size());
  for (std::size_t e : matched_edges) {
    const Flow& f = flows[e];
    const auto s = net.source_coord(f.src);
    const auto t = net.dest_coord(f.dst);
    g_c.add_edge(static_cast<std::size_t>(s.tor - 1), static_cast<std::size_t>(t.tor - 1));
    edge_to_flow.push_back(e);
  }
  CF_CHECK_MSG(g_c.max_degree() <= static_cast<std::size_t>(n),
               "matched flows per ToR (" << g_c.max_degree()
                                         << ") exceed middle count " << n
                                         << "; Doom-Switch needs servers_per_tor <= n");
  const std::vector<int> colors = edge_coloring(g_c, n);

  DoomSwitchResult result;
  result.middles.assign(flows.size(), 0);
  result.matched.assign(matched_edges.begin(), matched_edges.end());
  std::sort(result.matched.begin(), result.matched.end());

  std::vector<std::size_t> per_color(static_cast<std::size_t>(n), 0);
  for (std::size_t i = 0; i < edge_to_flow.size(); ++i) {
    result.middles[edge_to_flow[i]] = colors[i] + 1;
    ++per_color[static_cast<std::size_t>(colors[i])];
  }

  // Step 3: the doomed middle is the color with the fewest matched flows.
  int doomed = 1;
  for (int m = 2; m <= n; ++m) {
    if (per_color[static_cast<std::size_t>(m - 1)] <
        per_color[static_cast<std::size_t>(doomed - 1)]) {
      doomed = m;
    }
  }
  result.doomed_middle = doomed;
  for (FlowIndex f = 0; f < flows.size(); ++f) {
    if (result.middles[f] == 0) result.middles[f] = doomed;
  }
  return result;
}

}  // namespace closfair
