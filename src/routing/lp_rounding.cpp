#include "routing/lp_rounding.hpp"

#include "fairness/waterfill.hpp"

namespace closfair {

MiddleAssignment round_splittable(const SplittableMaxMin& splittable, Rng& rng) {
  MiddleAssignment middles(splittable.shares.size(), 1);
  for (std::size_t f = 0; f < splittable.shares.size(); ++f) {
    const auto& shares = splittable.shares[f];
    const Rational total = splittable.rates.rate(f);
    if (total.is_zero()) continue;  // middle 1; the flow carries nothing anyway
    // Inverse-CDF sampling over exact shares using one double draw: exact
    // proportions, double granularity — fine for a randomized heuristic.
    const double u = rng.next_double();
    double acc = 0.0;
    for (std::size_t m = 0; m < shares.size(); ++m) {
      acc += (shares[m] / total).to_double();
      if (u < acc) {
        middles[f] = static_cast<int>(m) + 1;
        break;
      }
      // Rounding slack: fall through to the last positive share.
      if (m + 1 == shares.size()) middles[f] = static_cast<int>(m) + 1;
    }
  }
  return middles;
}

RoundingResult round_splittable_best_of(const ClosNetwork& net, const FlowSet& flows,
                                        const SplittableMaxMin& splittable, Rng& rng,
                                        std::size_t attempts) {
  CF_CHECK(attempts >= 1);
  CF_CHECK(splittable.shares.size() == flows.size());
  RoundingResult best;
  for (std::size_t draw = 0; draw < attempts; ++draw) {
    MiddleAssignment middles = round_splittable(splittable, rng);
    Allocation<Rational> alloc = max_min_fair<Rational>(net, flows, middles);
    if (draw == 0 ||
        lex_compare_sorted(alloc, best.alloc) == std::strong_ordering::greater) {
      best.middles = std::move(middles);
      best.alloc = std::move(alloc);
    }
  }
  best.draws = attempts;
  return best;
}

}  // namespace closfair
