#include "util/rng.hpp"

#include <algorithm>
#include <cmath>

namespace closfair {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  CF_CHECK(bound > 0);
  // Lemire's nearly-divisionless method with rejection for exact uniformity.
  using U128 = unsigned __int128;
  std::uint64_t x = next_u64();
  U128 m = U128{x} * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    std::uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = next_u64();
      m = U128{x} * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::next_int(std::int64_t lo, std::int64_t hi) {
  CF_CHECK(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  // span == 0 means the full 64-bit range.
  const std::uint64_t draw = span == 0 ? next_u64() : next_below(span);
  return lo + static_cast<std::int64_t>(draw);
}

double Rng::next_double() {
  // 53 high bits -> [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

bool Rng::next_bool(double p) { return next_double() < p; }

double Rng::next_exponential(double rate) {
  CF_CHECK(rate > 0);
  double u = next_double();
  // Guard log(0).
  if (u <= 0.0) u = 0x1.0p-53;
  return -std::log(u) / rate;
}

std::vector<std::size_t> Rng::permutation(std::size_t n) {
  std::vector<std::size_t> p(n);
  for (std::size_t i = 0; i < n; ++i) p[i] = i;
  shuffle(p);
  return p;
}

ZipfSampler::ZipfSampler(std::size_t n, double s) {
  CF_CHECK(n > 0);
  CF_CHECK(s >= 0);
  cdf_.resize(n);
  double acc = 0;
  for (std::size_t i = 0; i < n; ++i) {
    acc += 1.0 / std::pow(static_cast<double>(i + 1), s);
    cdf_[i] = acc;
  }
  for (auto& v : cdf_) v /= acc;
  cdf_.back() = 1.0;  // close the CDF exactly despite rounding
}

std::size_t ZipfSampler::sample(Rng& rng) const {
  const double u = rng.next_double();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) --it;
  return static_cast<std::size_t>(it - cdf_.begin());
}

}  // namespace closfair
