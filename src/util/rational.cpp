#include "util/rational.hpp"

#include <cstdlib>
#include <limits>
#include <numeric>
#include <ostream>
#include <sstream>

namespace closfair {
namespace {

using Int128 = __int128;

constexpr std::int64_t kMin64 = std::numeric_limits<std::int64_t>::min();
constexpr std::int64_t kMax64 = std::numeric_limits<std::int64_t>::max();

std::int64_t narrow(Int128 v, const char* op) {
  if (v < Int128{kMin64} || v > Int128{kMax64}) {
    throw RationalOverflow(std::string{"Rational overflow in "} + op);
  }
  return static_cast<std::int64_t>(v);
}

Int128 gcd128(Int128 a, Int128 b) {
  if (a < 0) a = -a;
  if (b < 0) b = -b;
  while (b != 0) {
    Int128 t = a % b;
    a = b;
    b = t;
  }
  return a;
}

}  // namespace

Rational::Rational(std::int64_t num, std::int64_t den) {
  if (den == 0) throw std::domain_error("Rational: zero denominator");
  if (num != kMin64 && den != kMin64) {
    // Common case entirely in 64-bit: negation is safe away from INT64_MIN,
    // and the reduced pair can only shrink, so nothing can overflow.
    if (den < 0) {
      num = -num;
      den = -den;
    }
    const std::uint64_t g =
        std::gcd(static_cast<std::uint64_t>(num < 0 ? -num : num),
                 static_cast<std::uint64_t>(den));
    if (g > 1) {
      num /= static_cast<std::int64_t>(g);
      den /= static_cast<std::int64_t>(g);
    }
    num_ = num;
    den_ = den;
    return;
  }
  // Normalize via 128-bit so that num == INT64_MIN does not overflow on negate.
  Int128 n = num;
  Int128 d = den;
  if (d < 0) {
    n = -n;
    d = -d;
  }
  Int128 g = gcd128(n, d);
  if (g > 1) {
    n /= g;
    d /= g;
  }
  num_ = narrow(n, "construction");
  den_ = narrow(d, "construction");
}

double Rational::to_double() const {
  return static_cast<double>(num_) / static_cast<double>(den_);
}

std::string Rational::to_string() const {
  std::ostringstream os;
  os << *this;
  return os.str();
}

Rational& Rational::operator+=(const Rational& rhs) {
  // a/b + c/d = (ad + cb) / bd, reduced. 128-bit intermediates cannot
  // overflow since each factor fits in 64 bits.
  Int128 n = Int128{num_} * rhs.den_ + Int128{rhs.num_} * den_;
  Int128 d = Int128{den_} * rhs.den_;
  Int128 g = gcd128(n, d);
  if (g > 1) {
    n /= g;
    d /= g;
  }
  num_ = narrow(n, "addition");
  den_ = narrow(d, "addition");
  return *this;
}

Rational& Rational::operator-=(const Rational& rhs) {
  Int128 n = Int128{num_} * rhs.den_ - Int128{rhs.num_} * den_;
  Int128 d = Int128{den_} * rhs.den_;
  Int128 g = gcd128(n, d);
  if (g > 1) {
    n /= g;
    d /= g;
  }
  num_ = narrow(n, "subtraction");
  den_ = narrow(d, "subtraction");
  return *this;
}

Rational& Rational::operator*=(const Rational& rhs) {
  Int128 n = Int128{num_} * rhs.num_;
  Int128 d = Int128{den_} * rhs.den_;
  Int128 g = gcd128(n, d);
  if (g > 1) {
    n /= g;
    d /= g;
  }
  num_ = narrow(n, "multiplication");
  den_ = narrow(d, "multiplication");
  return *this;
}

Rational& Rational::operator/=(const Rational& rhs) {
  if (rhs.num_ == 0) throw std::domain_error("Rational: division by zero");
  Int128 n = Int128{num_} * rhs.den_;
  Int128 d = Int128{den_} * rhs.num_;
  if (d < 0) {
    n = -n;
    d = -d;
  }
  Int128 g = gcd128(n, d);
  if (g > 1) {
    n /= g;
    d /= g;
  }
  num_ = narrow(n, "division");
  den_ = narrow(d, "division");
  return *this;
}

std::strong_ordering operator<=>(const Rational& a, const Rational& b) {
  // Cross-multiply in 128 bits: denominators are positive, so the sign of
  // a.num*b.den - b.num*a.den is the sign of a - b.
  Int128 lhs = Int128{a.num_} * b.den_;
  Int128 rhs = Int128{b.num_} * a.den_;
  if (lhs < rhs) return std::strong_ordering::less;
  if (lhs > rhs) return std::strong_ordering::greater;
  return std::strong_ordering::equal;
}

std::ostream& operator<<(std::ostream& os, const Rational& r) {
  os << r.num();
  if (r.den() != 1) os << '/' << r.den();
  return os;
}

std::int64_t gcd_i64(std::int64_t a, std::int64_t b) {
  return narrow(gcd128(Int128{a}, Int128{b}), "gcd");
}

bool checked_lcm_i64(std::int64_t a, std::int64_t b, std::int64_t& out) {
  const std::int64_t g = gcd_i64(a, b);
  if (g == 0) {
    out = 0;
    return true;
  }
  return checked_mul_i64(a / g, b, out);
}

Rational rational_from_string(std::string_view text) {
  const auto parse_i64 = [&](std::string_view token) -> std::int64_t {
    if (token.empty()) throw std::invalid_argument("empty rational component");
    std::int64_t value = 0;
    std::size_t i = 0;
    bool negative = false;
    if (token[0] == '-') {
      negative = true;
      i = 1;
      if (token.size() == 1) throw std::invalid_argument("bare '-' in rational");
    }
    for (; i < token.size(); ++i) {
      const char c = token[i];
      if (c < '0' || c > '9') {
        throw std::invalid_argument("invalid rational '" + std::string{text} + "'");
      }
      const std::int64_t digit = c - '0';
      if (value > (kMax64 - digit) / 10) {
        throw std::invalid_argument("rational component out of int64 range");
      }
      value = value * 10 + digit;
    }
    return negative ? -value : value;
  };

  const std::size_t slash = text.find('/');
  if (slash == std::string_view::npos) return Rational{parse_i64(text)};
  const std::int64_t num = parse_i64(text.substr(0, slash));
  const std::int64_t den = parse_i64(text.substr(slash + 1));
  if (den == 0) throw std::invalid_argument("zero denominator in rational");
  return Rational{num, den};
}

}  // namespace closfair
