#include "util/json.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>

namespace closfair {

Json Json::boolean(bool v) {
  Json j;
  j.kind_ = Kind::kBool;
  j.bool_ = v;
  return j;
}

Json Json::number(double v) {
  CF_CHECK_MSG(std::isfinite(v), "JSON numbers must be finite");
  Json j;
  j.kind_ = Kind::kNumber;
  j.number_ = v;
  return j;
}

Json Json::number(std::int64_t v) {
  Json j;
  j.kind_ = Kind::kInt;
  j.int_ = v;
  return j;
}

Json Json::string(std::string v) {
  Json j;
  j.kind_ = Kind::kString;
  j.string_ = std::move(v);
  return j;
}

Json Json::array() {
  Json j;
  j.kind_ = Kind::kArray;
  return j;
}

Json Json::object() {
  Json j;
  j.kind_ = Kind::kObject;
  return j;
}

void Json::push_back(Json v) {
  CF_CHECK_MSG(kind_ == Kind::kArray, "push_back on a non-array JSON value");
  array_.push_back(std::move(v));
}

void Json::set(const std::string& key, Json v) {
  CF_CHECK_MSG(kind_ == Kind::kObject, "set on a non-object JSON value");
  for (auto& [k, existing] : object_) {
    if (k == key) {
      existing = std::move(v);
      return;
    }
  }
  object_.emplace_back(key, std::move(v));
}

std::size_t Json::size() const {
  switch (kind_) {
    case Kind::kArray: return array_.size();
    case Kind::kObject: return object_.size();
    default: return 0;
  }
}

bool Json::as_bool() const {
  CF_CHECK_MSG(kind_ == Kind::kBool, "as_bool on a non-boolean JSON value");
  return bool_;
}

std::int64_t Json::as_int() const {
  CF_CHECK_MSG(kind_ == Kind::kInt, "as_int on a non-integer JSON value");
  return int_;
}

double Json::as_double() const {
  CF_CHECK_MSG(kind_ == Kind::kNumber || kind_ == Kind::kInt,
               "as_double on a non-numeric JSON value");
  return kind_ == Kind::kInt ? static_cast<double>(int_) : number_;
}

const std::string& Json::as_string() const {
  CF_CHECK_MSG(kind_ == Kind::kString, "as_string on a non-string JSON value");
  return string_;
}

const Json& Json::at(std::size_t i) const {
  CF_CHECK_MSG(kind_ == Kind::kArray, "at(index) on a non-array JSON value");
  CF_CHECK_MSG(i < array_.size(), "JSON array index " << i << " out of range");
  return array_[i];
}

const std::vector<Json>& Json::items() const {
  CF_CHECK_MSG(kind_ == Kind::kArray, "items on a non-array JSON value");
  return array_;
}

const Json* Json::find(const std::string& key) const {
  CF_CHECK_MSG(kind_ == Kind::kObject, "find on a non-object JSON value");
  for (const auto& [k, v] : object_) {
    if (k == key) return &v;
  }
  return nullptr;
}

const Json& Json::at(const std::string& key) const {
  const Json* found = find(key);
  CF_CHECK_MSG(found != nullptr, "JSON object has no key '" << key << "'");
  return *found;
}

const std::vector<std::pair<std::string, Json>>& Json::members() const {
  CF_CHECK_MSG(kind_ == Kind::kObject, "members on a non-object JSON value");
  return object_;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default: {
        // Promote through unsigned char: with a signed plain char, bytes
        // >= 0x80 (UTF-8 continuation/lead bytes in names and comments)
        // would sign-extend to negative ints — the < 0x20 test would pass
        // them to the escape branch as ￿ffXX garbage. Only genuine
        // control characters are escaped; UTF-8 passes through verbatim.
        const unsigned char uc = static_cast<unsigned char>(c);
        if (uc < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", static_cast<unsigned int>(uc));
          out += buf;
        } else {
          out += c;
        }
      }
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Parser: recursive descent over a string_view with a byte cursor.

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Json parse_document() {
    Json value = parse_value();
    skip_whitespace();
    if (pos_ != text_.size()) fail("trailing garbage after JSON value");
    return value;
  }

 private:
  static constexpr int kMaxDepth = 256;

  [[noreturn]] void fail(const std::string& message) const {
    throw JsonParseError("JSON parse error at byte " + std::to_string(pos_) + ": " +
                         message);
  }

  void skip_whitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  bool consume(char expected) {
    if (pos_ < text_.size() && text_[pos_] == expected) {
      ++pos_;
      return true;
    }
    return false;
  }

  void expect(char expected) {
    if (!consume(expected)) {
      fail(std::string{"expected '"} + expected + "'");
    }
  }

  void expect_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) {
      fail("invalid literal (expected " + std::string{literal} + ")");
    }
    pos_ += literal.size();
  }

  Json parse_value() {
    if (++depth_ > kMaxDepth) fail("nesting deeper than 256 levels");
    skip_whitespace();
    Json result;
    switch (peek()) {
      case 'n': expect_literal("null"); result = Json::null(); break;
      case 't': expect_literal("true"); result = Json::boolean(true); break;
      case 'f': expect_literal("false"); result = Json::boolean(false); break;
      case '"': result = Json::string(parse_string()); break;
      case '[': result = parse_array(); break;
      case '{': result = parse_object(); break;
      default: result = parse_number(); break;
    }
    --depth_;
    return result;
  }

  Json parse_array() {
    expect('[');
    Json arr = Json::array();
    skip_whitespace();
    if (consume(']')) return arr;
    while (true) {
      arr.push_back(parse_value());
      skip_whitespace();
      if (consume(']')) return arr;
      expect(',');
    }
  }

  Json parse_object() {
    expect('{');
    Json obj = Json::object();
    skip_whitespace();
    if (consume('}')) return obj;
    while (true) {
      skip_whitespace();
      if (peek() != '"') fail("object keys must be strings");
      std::string key = parse_string();
      skip_whitespace();
      expect(':');
      obj.set(key, parse_value());
      skip_whitespace();
      if (consume('}')) return obj;
      expect(',');
    }
  }

  // Appends `code` (a Unicode scalar value) to `out` as UTF-8.
  static void append_utf8(std::string& out, std::uint32_t code) {
    if (code < 0x80) {
      out += static_cast<char>(code);
    } else if (code < 0x800) {
      out += static_cast<char>(0xc0 | (code >> 6));
      out += static_cast<char>(0x80 | (code & 0x3f));
    } else if (code < 0x10000) {
      out += static_cast<char>(0xe0 | (code >> 12));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
      out += static_cast<char>(0x80 | (code & 0x3f));
    } else {
      out += static_cast<char>(0xf0 | (code >> 18));
      out += static_cast<char>(0x80 | ((code >> 12) & 0x3f));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
      out += static_cast<char>(0x80 | (code & 0x3f));
    }
  }

  std::uint32_t parse_hex4() {
    if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
    std::uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value |= static_cast<std::uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value |= static_cast<std::uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value |= static_cast<std::uint32_t>(c - 'A' + 10);
      } else {
        fail("invalid hex digit in \\u escape");
      }
    }
    return value;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) fail("raw control character in string");
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          std::uint32_t code = parse_hex4();
          if (code >= 0xd800 && code <= 0xdbff) {
            // High surrogate: a low surrogate escape must follow.
            if (pos_ + 1 < text_.size() && text_[pos_] == '\\' && text_[pos_ + 1] == 'u') {
              pos_ += 2;
              const std::uint32_t low = parse_hex4();
              if (low < 0xdc00 || low > 0xdfff) fail("unpaired surrogate in \\u escape");
              code = 0x10000 + ((code - 0xd800) << 10) + (low - 0xdc00);
            } else {
              fail("unpaired surrogate in \\u escape");
            }
          } else if (code >= 0xdc00 && code <= 0xdfff) {
            fail("unpaired surrogate in \\u escape");
          }
          append_utf8(out, code);
          break;
        }
        default: fail("invalid escape character");
      }
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (consume('-')) {}
    if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
      pos_ = start;
      fail("invalid value");
    }
    bool integral = true;
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') ++pos_;
    if (pos_ < text_.size() && text_[pos_] == '.') {
      integral = false;
      ++pos_;
      if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
        fail("digit required after decimal point");
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      integral = false;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
        fail("digit required in exponent");
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') ++pos_;
    }
    const std::string_view token = text_.substr(start, pos_ - start);
    if (integral) {
      std::int64_t value = 0;
      const auto [ptr, ec] = std::from_chars(token.data(), token.data() + token.size(), value);
      if (ec == std::errc{} && ptr == token.data() + token.size()) {
        return Json::number(value);
      }
      // Out of int64 range: fall through to double.
    }
    double value = 0.0;
    const auto [ptr, ec] = std::from_chars(token.data(), token.data() + token.size(), value);
    if (ec != std::errc{} || ptr != token.data() + token.size()) fail("invalid number");
    if (!std::isfinite(value)) fail("number out of double range");
    return Json::number(value);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

Json Json::parse(std::string_view text) { return Parser(text).parse_document(); }

void Json::write(std::string& out, int indent, int depth) const {
  const std::string pad = indent > 0 ? std::string(static_cast<std::size_t>(indent) *
                                                       static_cast<std::size_t>(depth + 1),
                                                   ' ')
                                     : std::string{};
  const std::string close_pad =
      indent > 0
          ? std::string(static_cast<std::size_t>(indent) * static_cast<std::size_t>(depth),
                        ' ')
          : std::string{};
  const char* nl = indent > 0 ? "\n" : "";
  const char* kv_sep = indent > 0 ? ": " : ":";

  switch (kind_) {
    case Kind::kNull:
      out += "null";
      break;
    case Kind::kBool:
      out += bool_ ? "true" : "false";
      break;
    case Kind::kInt:
      out += std::to_string(int_);
      break;
    case Kind::kNumber: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.12g", number_);
      out += buf;
      break;
    }
    case Kind::kString:
      out += '"';
      out += json_escape(string_);
      out += '"';
      break;
    case Kind::kArray: {
      if (array_.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      out += nl;
      for (std::size_t i = 0; i < array_.size(); ++i) {
        out += pad;
        array_[i].write(out, indent, depth + 1);
        if (i + 1 < array_.size()) out += ',';
        out += nl;
      }
      out += close_pad;
      out += ']';
      break;
    }
    case Kind::kObject: {
      if (object_.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      out += nl;
      for (std::size_t i = 0; i < object_.size(); ++i) {
        out += pad;
        out += '"';
        out += json_escape(object_[i].first);
        out += '"';
        out += kv_sep;
        object_[i].second.write(out, indent, depth + 1);
        if (i + 1 < object_.size()) out += ',';
        out += nl;
      }
      out += close_pad;
      out += '}';
      break;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  write(out, indent, 0);
  return out;
}

}  // namespace closfair
