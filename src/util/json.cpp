#include "util/json.hpp"

#include <cmath>
#include <cstdio>

namespace closfair {

Json Json::boolean(bool v) {
  Json j;
  j.kind_ = Kind::kBool;
  j.bool_ = v;
  return j;
}

Json Json::number(double v) {
  CF_CHECK_MSG(std::isfinite(v), "JSON numbers must be finite");
  Json j;
  j.kind_ = Kind::kNumber;
  j.number_ = v;
  return j;
}

Json Json::number(std::int64_t v) {
  Json j;
  j.kind_ = Kind::kInt;
  j.int_ = v;
  return j;
}

Json Json::string(std::string v) {
  Json j;
  j.kind_ = Kind::kString;
  j.string_ = std::move(v);
  return j;
}

Json Json::array() {
  Json j;
  j.kind_ = Kind::kArray;
  return j;
}

Json Json::object() {
  Json j;
  j.kind_ = Kind::kObject;
  return j;
}

void Json::push_back(Json v) {
  CF_CHECK_MSG(kind_ == Kind::kArray, "push_back on a non-array JSON value");
  array_.push_back(std::move(v));
}

void Json::set(const std::string& key, Json v) {
  CF_CHECK_MSG(kind_ == Kind::kObject, "set on a non-object JSON value");
  for (auto& [k, existing] : object_) {
    if (k == key) {
      existing = std::move(v);
      return;
    }
  }
  object_.emplace_back(key, std::move(v));
}

std::size_t Json::size() const {
  switch (kind_) {
    case Kind::kArray: return array_.size();
    case Kind::kObject: return object_.size();
    default: return 0;
  }
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void Json::write(std::string& out, int indent, int depth) const {
  const std::string pad = indent > 0 ? std::string(static_cast<std::size_t>(indent) *
                                                       static_cast<std::size_t>(depth + 1),
                                                   ' ')
                                     : std::string{};
  const std::string close_pad =
      indent > 0
          ? std::string(static_cast<std::size_t>(indent) * static_cast<std::size_t>(depth),
                        ' ')
          : std::string{};
  const char* nl = indent > 0 ? "\n" : "";
  const char* kv_sep = indent > 0 ? ": " : ":";

  switch (kind_) {
    case Kind::kNull:
      out += "null";
      break;
    case Kind::kBool:
      out += bool_ ? "true" : "false";
      break;
    case Kind::kInt:
      out += std::to_string(int_);
      break;
    case Kind::kNumber: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.12g", number_);
      out += buf;
      break;
    }
    case Kind::kString:
      out += '"';
      out += json_escape(string_);
      out += '"';
      break;
    case Kind::kArray: {
      if (array_.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      out += nl;
      for (std::size_t i = 0; i < array_.size(); ++i) {
        out += pad;
        array_[i].write(out, indent, depth + 1);
        if (i + 1 < array_.size()) out += ',';
        out += nl;
      }
      out += close_pad;
      out += ']';
      break;
    }
    case Kind::kObject: {
      if (object_.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      out += nl;
      for (std::size_t i = 0; i < object_.size(); ++i) {
        out += pad;
        out += '"';
        out += json_escape(object_[i].first);
        out += '"';
        out += kv_sep;
        object_[i].second.write(out, indent, depth + 1);
        if (i + 1 < object_.size()) out += ',';
        out += nl;
      }
      out += close_pad;
      out += '}';
      break;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  write(out, indent, 0);
  return out;
}

}  // namespace closfair
