// Deterministic pseudo-random number generation for workloads and tests.
//
// We ship our own small generator (xoshiro256**, seeded via splitmix64) so
// that workloads are bit-reproducible across standard libraries — std::mt19937
// is portable but std::uniform_int_distribution is not.
#pragma once

#include <cstdint>
#include <vector>

#include "util/check.hpp"

namespace closfair {

/// xoshiro256** PRNG with splitmix64 seeding. Deterministic across platforms.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eed5eed5eed5eedULL);

  /// Uniform 64-bit word.
  std::uint64_t next_u64();

  /// Uniform integer in [0, bound) via Lemire rejection; bound > 0.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive; lo <= hi.
  std::int64_t next_int(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double next_double();

  /// Bernoulli(p).
  bool next_bool(double p = 0.5);

  /// Exponential with the given rate (mean 1/rate); rate > 0.
  double next_exponential(double rate);

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(next_below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// A random permutation of [0, n).
  std::vector<std::size_t> permutation(std::size_t n);

 private:
  std::uint64_t state_[4];
};

/// Zipf(s) sampler over {0, ..., n-1} by inverse-CDF table; heavier weight on
/// lower ranks. s == 0 degenerates to uniform.
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double s);

  [[nodiscard]] std::size_t size() const { return cdf_.size(); }

  /// Draw one rank.
  std::size_t sample(Rng& rng) const;

 private:
  std::vector<double> cdf_;
};

}  // namespace closfair
