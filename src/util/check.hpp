// Lightweight contract checking for closfair.
//
// Following the C++ Core Guidelines (I.6, E.2), precondition violations and
// internal invariant failures throw exceptions carrying the failing
// expression and location, rather than aborting. All checks stay enabled in
// release builds: this library's purpose is verifying theorems, so silent
// corruption is far worse than the cost of a comparison.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace closfair {

/// Thrown when a CF_CHECK precondition or invariant fails.
class ContractViolation : public std::logic_error {
 public:
  explicit ContractViolation(const std::string& what) : std::logic_error(what) {}
};

namespace detail {

[[noreturn]] inline void contract_fail(const char* expr, const char* file, int line,
                                       const std::string& msg) {
  std::ostringstream os;
  os << "contract violation: " << expr << " at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw ContractViolation(os.str());
}

}  // namespace detail
}  // namespace closfair

/// Check a precondition / invariant; throws ContractViolation on failure.
#define CF_CHECK(expr)                                                        \
  do {                                                                        \
    if (!(expr)) ::closfair::detail::contract_fail(#expr, __FILE__, __LINE__, \
                                                   std::string{});            \
  } while (0)

/// Check with an explanatory message (streamed into the exception).
#define CF_CHECK_MSG(expr, msg)                                               \
  do {                                                                        \
    if (!(expr)) {                                                            \
      std::ostringstream cf_check_os_;                                        \
      cf_check_os_ << msg;                                                    \
      ::closfair::detail::contract_fail(#expr, __FILE__, __LINE__,            \
                                        cf_check_os_.str());                  \
    }                                                                         \
  } while (0)
