// Exact rational arithmetic over 64-bit integers.
//
// Every theory-path computation in closfair (water-filling, lexicographic
// comparison of sorted allocation vectors, exact simplex) runs on Rational so
// that reproductions of lexicographic-order theorems cannot be corrupted by
// floating-point ties. Overflow is detected (via 128-bit intermediates) and
// reported by exception rather than wrapped silently.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <stdexcept>
#include <string>
#include <string_view>

namespace closfair {

/// Thrown when a Rational operation would overflow its 64-bit representation.
class RationalOverflow : public std::overflow_error {
 public:
  explicit RationalOverflow(const std::string& what) : std::overflow_error(what) {}
};

/// An exact rational number num/den with den > 0 and gcd(num, den) == 1.
///
/// Arithmetic is checked: results whose normalized numerator or denominator
/// exceed int64 range throw RationalOverflow. The class is a regular value
/// type (EqualityComparable, LessThanComparable, hashable) and is ordered by
/// numeric value.
class Rational {
 public:
  /// Zero.
  constexpr Rational() = default;

  /// From an integer.
  constexpr Rational(std::int64_t value) : num_(value), den_(1) {}  // NOLINT(google-explicit-constructor)

  /// From numerator/denominator; normalizes sign and reduces to lowest terms.
  /// Throws std::domain_error if den == 0.
  Rational(std::int64_t num, std::int64_t den);

  [[nodiscard]] constexpr std::int64_t num() const { return num_; }
  [[nodiscard]] constexpr std::int64_t den() const { return den_; }

  [[nodiscard]] constexpr bool is_zero() const { return num_ == 0; }
  [[nodiscard]] constexpr bool is_negative() const { return num_ < 0; }
  [[nodiscard]] constexpr bool is_integer() const { return den_ == 1; }

  /// Nearest double approximation (for reporting only).
  [[nodiscard]] double to_double() const;

  /// "p/q" or just "p" when integral.
  [[nodiscard]] std::string to_string() const;

  Rational& operator+=(const Rational& rhs);
  Rational& operator-=(const Rational& rhs);
  Rational& operator*=(const Rational& rhs);
  /// Throws std::domain_error on division by zero.
  Rational& operator/=(const Rational& rhs);

  friend Rational operator+(Rational lhs, const Rational& rhs) { return lhs += rhs; }
  friend Rational operator-(Rational lhs, const Rational& rhs) { return lhs -= rhs; }
  friend Rational operator*(Rational lhs, const Rational& rhs) { return lhs *= rhs; }
  friend Rational operator/(Rational lhs, const Rational& rhs) { return lhs /= rhs; }
  friend Rational operator-(const Rational& r) { return Rational{-r.num_, r.den_}; }

  friend bool operator==(const Rational& a, const Rational& b) {
    return a.num_ == b.num_ && a.den_ == b.den_;
  }
  friend std::strong_ordering operator<=>(const Rational& a, const Rational& b);

 private:
  std::int64_t num_ = 0;
  std::int64_t den_ = 1;
};

std::ostream& operator<<(std::ostream& os, const Rational& r);

/// min/max by numeric value.
[[nodiscard]] inline const Rational& min(const Rational& a, const Rational& b) {
  return b < a ? b : a;
}
[[nodiscard]] inline const Rational& max(const Rational& a, const Rational& b) {
  return a < b ? b : a;
}

/// |r|.
[[nodiscard]] inline Rational abs(const Rational& r) { return r.is_negative() ? -r : r; }

/// Inverse of to_string: parses "p" or "p/q" (optionally negative, no
/// whitespace). Throws std::invalid_argument on anything else, including a
/// zero denominator. Used by the io/svc layers to round-trip exact rates.
[[nodiscard]] Rational rational_from_string(std::string_view text);

// ---------------------------------------------------------------------------
// Overflow-probe helpers for fixed-point fast paths (fairness/waterfill.cpp).
//
// The water-fill fast path scales every capacity to a common denominator and
// runs the filling rounds in pure int64 arithmetic. These primitives report
// overflow through their return value instead of wrapping or throwing, so
// the hot loop can detect the first unrepresentable intermediate and fall
// back to the exact Rational engine.

/// out = a + b; false iff the sum overflows int64 (out is then unspecified).
[[nodiscard]] inline bool checked_add_i64(std::int64_t a, std::int64_t b,
                                          std::int64_t& out) {
  return !__builtin_add_overflow(a, b, &out);
}

/// out = a - b; false iff the difference overflows int64.
[[nodiscard]] inline bool checked_sub_i64(std::int64_t a, std::int64_t b,
                                          std::int64_t& out) {
  return !__builtin_sub_overflow(a, b, &out);
}

/// out = a * b; false iff the product overflows int64.
[[nodiscard]] inline bool checked_mul_i64(std::int64_t a, std::int64_t b,
                                          std::int64_t& out) {
  return !__builtin_mul_overflow(a, b, &out);
}

/// gcd of |a| and |b| (gcd(0, 0) == 0).
[[nodiscard]] std::int64_t gcd_i64(std::int64_t a, std::int64_t b);

/// out = lcm(a, b) for positive a, b; false iff the lcm exceeds int64.
[[nodiscard]] bool checked_lcm_i64(std::int64_t a, std::int64_t b, std::int64_t& out);

}  // namespace closfair

template <>
struct std::hash<closfair::Rational> {
  std::size_t operator()(const closfair::Rational& r) const noexcept {
    std::size_t h = std::hash<std::int64_t>{}(r.num());
    h ^= std::hash<std::int64_t>{}(r.den()) + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    return h;
  }
};
