// Plain-text table rendering for the benchmark harnesses.
//
// Every bench binary reproduces a paper figure/bound as a table of
// "paper-predicted vs measured" rows; this helper keeps their output aligned
// and uniform.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace closfair {

/// Column-aligned text table. Add a header, then rows; render() pads cells.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Append one row; must match the header width.
  void add_row(std::vector<std::string> row);

  [[nodiscard]] std::size_t num_rows() const { return rows_.size(); }

  /// Render with column padding, a header underline, and two-space gutters.
  [[nodiscard]] std::string render() const;

  friend std::ostream& operator<<(std::ostream& os, const TextTable& t);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format a double with the given precision (fixed notation).
[[nodiscard]] std::string fmt_double(double v, int precision = 4);

}  // namespace closfair
