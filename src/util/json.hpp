// Minimal JSON value builder, writer, and parser.
//
// Bench harnesses and the CLI export machine-readable results for plotting
// pipelines without dragging in an external dependency. Build values with
// the static constructors, serialize with dump(). Output is deterministic
// (object keys keep insertion order) so exports diff cleanly.
//
// The parser (Json::parse) is the inverse: it accepts any RFC 8259 document
// and returns the value tree, decoding \uXXXX escapes (including surrogate
// pairs) to UTF-8. Integral numbers that fit std::int64_t parse as integers,
// so dump(parse(dump(x))) is a fixed point for exported reports. The
// scenario-evaluation service (src/svc) builds its request/response loop and
// canonical spec serialization on this pair.
#pragma once

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/check.hpp"

namespace closfair {

/// Thrown on malformed JSON text; what() includes the byte offset.
class JsonParseError : public std::runtime_error {
 public:
  explicit JsonParseError(const std::string& what) : std::runtime_error(what) {}
};

/// An immutable-ish JSON value (null, bool, number, string, array, object).
class Json {
 public:
  Json() : kind_(Kind::kNull) {}

  static Json null() { return Json(); }
  static Json boolean(bool v);
  static Json number(double v);
  static Json number(std::int64_t v);
  static Json string(std::string v);
  static Json array();
  static Json object();

  /// Parse a complete JSON document (one value plus surrounding whitespace).
  /// Throws JsonParseError on malformed input, trailing garbage, or nesting
  /// deeper than 256 levels.
  static Json parse(std::string_view text);

  /// Array append (this must be an array).
  void push_back(Json v);

  /// Object insert/overwrite by key (this must be an object). Keys keep
  /// first-insertion order.
  void set(const std::string& key, Json v);

  [[nodiscard]] bool is_null() const { return kind_ == Kind::kNull; }
  [[nodiscard]] bool is_bool() const { return kind_ == Kind::kBool; }
  [[nodiscard]] bool is_int() const { return kind_ == Kind::kInt; }
  [[nodiscard]] bool is_number() const {
    return kind_ == Kind::kNumber || kind_ == Kind::kInt;
  }
  [[nodiscard]] bool is_string() const { return kind_ == Kind::kString; }
  [[nodiscard]] bool is_array() const { return kind_ == Kind::kArray; }
  [[nodiscard]] bool is_object() const { return kind_ == Kind::kObject; }
  [[nodiscard]] std::size_t size() const;

  /// Typed reads; ContractViolation on kind mismatch. as_double accepts
  /// integers, as_int demands an integral value.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] std::int64_t as_int() const;
  [[nodiscard]] double as_double() const;
  [[nodiscard]] const std::string& as_string() const;

  /// Array element access (this must be an array; index checked).
  [[nodiscard]] const Json& at(std::size_t i) const;
  [[nodiscard]] const std::vector<Json>& items() const;

  /// Object lookup: find returns nullptr when the key is absent, at throws.
  [[nodiscard]] const Json* find(const std::string& key) const;
  [[nodiscard]] const Json& at(const std::string& key) const;
  [[nodiscard]] const std::vector<std::pair<std::string, Json>>& members() const;

  /// Serialize; `indent` > 0 pretty-prints with that many spaces per level.
  [[nodiscard]] std::string dump(int indent = 0) const;

 private:
  enum class Kind { kNull, kBool, kNumber, kInt, kString, kArray, kObject };

  void write(std::string& out, int indent, int depth) const;

  Kind kind_;
  bool bool_ = false;
  double number_ = 0.0;
  std::int64_t int_ = 0;
  std::string string_;
  std::vector<Json> array_;
  std::vector<std::pair<std::string, Json>> object_;
};

/// JSON string escaping (quotes, control characters, backslash).
[[nodiscard]] std::string json_escape(const std::string& s);

}  // namespace closfair
