// Minimal JSON value builder + writer.
//
// Bench harnesses and the CLI export machine-readable results for plotting
// pipelines without dragging in an external dependency. Build values with
// the static constructors, serialize with dump(). Output is deterministic
// (object keys keep insertion order) so exports diff cleanly.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "util/check.hpp"

namespace closfair {

/// An immutable-ish JSON value (null, bool, number, string, array, object).
class Json {
 public:
  Json() : kind_(Kind::kNull) {}

  static Json null() { return Json(); }
  static Json boolean(bool v);
  static Json number(double v);
  static Json number(std::int64_t v);
  static Json string(std::string v);
  static Json array();
  static Json object();

  /// Array append (this must be an array).
  void push_back(Json v);

  /// Object insert/overwrite by key (this must be an object). Keys keep
  /// first-insertion order.
  void set(const std::string& key, Json v);

  [[nodiscard]] bool is_null() const { return kind_ == Kind::kNull; }
  [[nodiscard]] bool is_array() const { return kind_ == Kind::kArray; }
  [[nodiscard]] bool is_object() const { return kind_ == Kind::kObject; }
  [[nodiscard]] std::size_t size() const;

  /// Serialize; `indent` > 0 pretty-prints with that many spaces per level.
  [[nodiscard]] std::string dump(int indent = 0) const;

 private:
  enum class Kind { kNull, kBool, kNumber, kInt, kString, kArray, kObject };

  void write(std::string& out, int indent, int depth) const;

  Kind kind_;
  bool bool_ = false;
  double number_ = 0.0;
  std::int64_t int_ = 0;
  std::string string_;
  std::vector<Json> array_;
  std::vector<std::pair<std::string, Json>> object_;
};

/// JSON string escaping (quotes, control characters, backslash).
[[nodiscard]] std::string json_escape(const std::string& s);

}  // namespace closfair
