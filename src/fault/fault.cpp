#include "fault/fault.hpp"

#include <algorithm>
#include <limits>
#include <numeric>
#include <sstream>

#include "obs/obs.hpp"

namespace closfair::fault {
namespace {

const Rational kZero{0};
const Rational kOne{1};

void check_middle(const ClosNetwork& net, int m) {
  CF_CHECK_MSG(m >= 1 && m <= net.num_middles(),
               "middle index " << m << " out of range [1, " << net.num_middles() << "]");
}

void check_tor(const ClosNetwork& net, int i) {
  CF_CHECK_MSG(i >= 1 && i <= net.num_tors(),
               "ToR index " << i << " out of range [1, " << net.num_tors() << "]");
}

void check_factor(const Rational& factor) {
  CF_CHECK_MSG(!(factor < kZero) && !(kOne < factor),
               "deration factor " << factor.to_string()
                                  << " outside [0, 1]: masks never revive capacity");
}

// Applies new = old * factor to one fabric link, counting kills/derations.
// Already-dead links are untouched (0 * factor == 0 anyway).
void scale_link(ClosNetwork& net, LinkStage stage, int tor, int middle,
                const Rational& factor, std::size_t& killed, std::size_t& derated) {
  const LinkId id = stage == LinkStage::kUplink ? net.uplink(tor, middle)
                                                : net.downlink(middle, tor);
  const Rational before = net.topology().link(id).capacity;
  const Rational after = before * factor;
  if (after == before) return;
  if (stage == LinkStage::kUplink) {
    net.set_uplink_capacity(tor, middle, after);
  } else {
    net.set_downlink_capacity(middle, tor, after);
  }
  if (after == kZero) {
    ++killed;
  } else {
    ++derated;
  }
}

}  // namespace

std::string summary(const FailureScenario& scenario) {
  std::ostringstream out;
  out << scenario.failed_middles.size() << " middle(s) failed, "
      << scenario.derated_links.size() << " link(s) derated, "
      << scenario.degraded_pods.size() << " pod(s) degraded";
  return out.str();
}

std::size_t apply(ClosNetwork& net, const FailureScenario& scenario) {
  std::size_t killed = 0;
  std::size_t derated = 0;

  for (int m : scenario.failed_middles) {
    check_middle(net, m);
    for (int i = 1; i <= net.num_tors(); ++i) {
      scale_link(net, LinkStage::kUplink, i, m, kZero, killed, derated);
      scale_link(net, LinkStage::kDownlink, i, m, kZero, killed, derated);
    }
  }
  for (const LinkDeration& d : scenario.derated_links) {
    check_middle(net, d.middle);
    check_tor(net, d.tor);
    check_factor(d.factor);
    scale_link(net, d.stage, d.tor, d.middle, d.factor, killed, derated);
  }
  for (const PodDegradation& pod : scenario.degraded_pods) {
    check_tor(net, pod.tor);
    check_factor(pod.factor);
    for (int m = 1; m <= net.num_middles(); ++m) {
      scale_link(net, LinkStage::kUplink, pod.tor, m, pod.factor, killed, derated);
      scale_link(net, LinkStage::kDownlink, pod.tor, m, pod.factor, killed, derated);
    }
  }

  std::vector<int> distinct = scenario.failed_middles;
  std::sort(distinct.begin(), distinct.end());
  distinct.erase(std::unique(distinct.begin(), distinct.end()), distinct.end());

  OBS_COUNTER_INC("fault.scenarios");
  OBS_COUNTER_ADD("fault.links_failed", killed);
  OBS_COUNTER_ADD("fault.links_derated", derated);
  OBS_COUNTER_ADD("fault.middles_failed", distinct.size());
  return killed + derated;
}

ClosNetwork degrade(ClosNetwork net, const FailureScenario& scenario) {
  apply(net, scenario);
  return net;
}

bool middle_alive(const ClosNetwork& net, int m) {
  check_middle(net, m);
  const Topology& topo = net.topology();
  for (int i = 1; i <= net.num_tors(); ++i) {
    if (!(topo.link(net.uplink(i, m)).capacity == kZero)) return true;
    if (!(topo.link(net.downlink(m, i)).capacity == kZero)) return true;
  }
  return false;
}

std::vector<int> surviving_middles(const ClosNetwork& net) {
  std::vector<int> alive;
  alive.reserve(static_cast<std::size_t>(net.num_middles()));
  for (int m = 1; m <= net.num_middles(); ++m) {
    if (middle_alive(net, m)) alive.push_back(m);
  }
  return alive;
}

bool surviving_middles_symmetric(const ClosNetwork& net) {
  const std::vector<int> alive = surviving_middles(net);
  if (alive.size() <= 1) return true;
  const Topology& topo = net.topology();
  for (int i = 1; i <= net.num_tors(); ++i) {
    const Rational up = topo.link(net.uplink(i, alive.front())).capacity;
    const Rational down = topo.link(net.downlink(alive.front(), i)).capacity;
    for (std::size_t a = 1; a < alive.size(); ++a) {
      if (!(topo.link(net.uplink(i, alive[a])).capacity == up)) return false;
      if (!(topo.link(net.downlink(alive[a], i)).capacity == down)) return false;
    }
  }
  return true;
}

bool middle_usable(const ClosNetwork& net, int src_tor, int dst_tor, int m) {
  check_middle(net, m);
  check_tor(net, src_tor);
  check_tor(net, dst_tor);
  const Topology& topo = net.topology();
  return kZero < topo.link(net.uplink(src_tor, m)).capacity &&
         kZero < topo.link(net.downlink(m, dst_tor)).capacity;
}

bool has_dead_fabric_links(const ClosNetwork& net) {
  const Topology& topo = net.topology();
  for (int i = 1; i <= net.num_tors(); ++i) {
    for (int m = 1; m <= net.num_middles(); ++m) {
      if (topo.link(net.uplink(i, m)).capacity == kZero) return true;
      if (topo.link(net.downlink(m, i)).capacity == kZero) return true;
    }
  }
  return false;
}

FailureScenario sample_link_failures(const ClosNetwork& net, double p, Rng& rng) {
  CF_CHECK_MSG(p >= 0.0 && p <= 1.0, "failure probability " << p << " outside [0, 1]");
  FailureScenario scenario;
  for (int i = 1; i <= net.num_tors(); ++i) {
    for (int m = 1; m <= net.num_middles(); ++m) {
      if (rng.next_bool(p)) {
        scenario.derated_links.push_back(LinkDeration{LinkStage::kUplink, i, m, kZero});
      }
    }
  }
  for (int m = 1; m <= net.num_middles(); ++m) {
    for (int i = 1; i <= net.num_tors(); ++i) {
      if (rng.next_bool(p)) {
        scenario.derated_links.push_back(LinkDeration{LinkStage::kDownlink, i, m, kZero});
      }
    }
  }
  return scenario;
}

FailureScenario sample_middle_outage(const ClosNetwork& net, int k, Rng& rng) {
  CF_CHECK_MSG(k >= 0 && k <= net.num_middles(),
               "outage size " << k << " outside [0, " << net.num_middles() << "]");
  const std::vector<std::size_t> perm =
      rng.permutation(static_cast<std::size_t>(net.num_middles()));
  FailureScenario scenario;
  scenario.failed_middles.reserve(static_cast<std::size_t>(k));
  for (int i = 0; i < k; ++i) {
    scenario.failed_middles.push_back(static_cast<int>(perm[static_cast<std::size_t>(i)]) + 1);
  }
  std::sort(scenario.failed_middles.begin(), scenario.failed_middles.end());
  return scenario;
}

FailureScenario worst_case_outage(const ClosNetwork& net, int k) {
  CF_CHECK_MSG(k >= 0 && k <= net.num_middles(),
               "outage size " << k << " outside [0, " << net.num_middles() << "]");
  const Topology& topo = net.topology();
  std::vector<Rational> weight(static_cast<std::size_t>(net.num_middles()), Rational{0});
  for (int m = 1; m <= net.num_middles(); ++m) {
    Rational total{0};
    for (int i = 1; i <= net.num_tors(); ++i) {
      total += topo.link(net.uplink(i, m)).capacity;
      total += topo.link(net.downlink(m, i)).capacity;
    }
    weight[static_cast<std::size_t>(m - 1)] = total;
  }
  std::vector<int> order(static_cast<std::size_t>(net.num_middles()));
  std::iota(order.begin(), order.end(), 1);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    const Rational& wa = weight[static_cast<std::size_t>(a - 1)];
    const Rational& wb = weight[static_cast<std::size_t>(b - 1)];
    if (wa == wb) return a < b;
    return wb < wa;
  });
  FailureScenario scenario;
  scenario.failed_middles.assign(order.begin(), order.begin() + k);
  std::sort(scenario.failed_middles.begin(), scenario.failed_middles.end());
  return scenario;
}

std::size_t reroute_dead_paths(const ClosNetwork& net, const FlowSet& flows,
                               MiddleAssignment& middles) {
  CF_CHECK(middles.size() == flows.size());
  const Topology& topo = net.topology();

  auto path_dead = [&](const Path& path) {
    for (LinkId l : path) {
      const Link& link = topo.link(l);
      if (!link.unbounded && link.capacity == kZero) return true;
    }
    return false;
  };

  std::vector<double> load(topo.num_links(), 0.0);
  for (FlowIndex f = 0; f < flows.size(); ++f) {
    for (LinkId l : net.path(flows[f].src, flows[f].dst, middles[f])) {
      load[static_cast<std::size_t>(l)] += 1.0;
    }
  }

  std::size_t rerouted = 0;
  for (FlowIndex f = 0; f < flows.size(); ++f) {
    const Path current = net.path(flows[f].src, flows[f].dst, middles[f]);
    if (!path_dead(current)) continue;
    for (LinkId l : current) load[static_cast<std::size_t>(l)] -= 1.0;

    int best = 0;
    double best_congestion = std::numeric_limits<double>::infinity();
    for (int m = 1; m <= net.num_middles(); ++m) {
      const Path path = net.path(flows[f].src, flows[f].dst, m);
      if (path_dead(path)) continue;
      double congestion = 0.0;
      for (LinkId l : path) {
        const Link& link = topo.link(l);
        if (link.unbounded) continue;
        congestion = std::max(congestion, (load[static_cast<std::size_t>(l)] + 1.0) /
                                              link.capacity.to_double());
      }
      if (congestion < best_congestion) {
        best_congestion = congestion;
        best = m;
      }
    }

    if (best == 0) {  // stranded: dead server link, or every middle unusable
      for (LinkId l : current) load[static_cast<std::size_t>(l)] += 1.0;
      continue;
    }
    middles[f] = best;
    ++rerouted;
    for (LinkId l : net.path(flows[f].src, flows[f].dst, best)) {
      load[static_cast<std::size_t>(l)] += 1.0;
    }
  }
  OBS_COUNTER_ADD("fault.reroutes", rerouted);
  return rerouted;
}

}  // namespace closfair::fault
