// Fault injection for degraded-fabric evaluation.
//
// The paper's results R1-R3 are proven on pristine Clos fabrics; production
// fabrics run with failed links and dead middle switches (cf. Bankhamer et
// al., randomized local fast rerouting, and the authors' follow-up work on
// minimum-congestion routing against degraded capacity). This module models
// failures as a *capacity mask*: a FailureScenario maps each fabric link to a
// factor in [0, 1], applied multiplicatively on top of the current capacity.
// Masks only ever shrink capacities — applying a scenario can never revive a
// link — so the fairness machinery (water-filling, bottleneck certificates,
// the LP path) consumes the masked topology completely unchanged, while the
// routing layers (ecmp, greedy, local_search, search_engine) learn to skip
// dead middles and respect derated capacities.
//
// Samplers are deterministic per Rng state: independent per-link failure with
// probability p, k-random-middle outage, and a targeted worst-case outage
// that removes the middles carrying the most surviving capacity.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "flow/flow.hpp"
#include "flow/routing.hpp"
#include "net/clos.hpp"
#include "util/rational.hpp"
#include "util/rng.hpp"

namespace closfair::fault {

/// Which stage of the Clos fabric a deration targets.
enum class LinkStage : std::uint8_t {
  kUplink,    ///< I_tor -> M_middle
  kDownlink,  ///< M_middle -> O_tor
};

/// One fabric-link deration: new capacity = old capacity * factor.
/// factor = 0 kills the link; factor must lie in [0, 1] (masks never revive).
struct LinkDeration {
  LinkStage stage = LinkStage::kUplink;
  int tor = 1;     ///< 1-based ToR index i
  int middle = 1;  ///< 1-based middle index m
  Rational factor{0};
};

/// Whole-pod degradation: every uplink and downlink of `tor` is scaled.
struct PodDegradation {
  int tor = 1;
  Rational factor{1};
};

/// A failure scenario over a Clos fabric: failed middle switches (all their
/// uplinks and downlinks go to zero), individually derated or failed links,
/// and degraded pods. Application order is middles, then links, then pods;
/// since every entry only multiplies by a factor in [0, 1], the composition
/// is order-insensitive for which links end up dead.
struct FailureScenario {
  std::vector<int> failed_middles;  ///< 1-based middle indices
  std::vector<LinkDeration> derated_links;
  std::vector<PodDegradation> degraded_pods;

  [[nodiscard]] bool empty() const {
    return failed_middles.empty() && derated_links.empty() && degraded_pods.empty();
  }
};

/// One-line human summary ("2 middles failed, 3 links derated, 1 pod degraded").
[[nodiscard]] std::string summary(const FailureScenario& scenario);

/// Applies the scenario to `net` in place as a capacity mask (new capacity =
/// old * factor; factors must be in [0, 1] — ContractViolation otherwise).
/// Returns the number of fabric links whose capacity changed. Bumps the obs
/// counters fault.scenarios, fault.links_failed (capacity reached zero),
/// fault.links_derated (reduced but positive), fault.middles_failed.
std::size_t apply(ClosNetwork& net, const FailureScenario& scenario);

/// Copying convenience: returns a degraded copy, leaving the original intact.
[[nodiscard]] ClosNetwork degrade(ClosNetwork net, const FailureScenario& scenario);

/// A middle switch is dead when every one of its uplinks AND every one of its
/// downlinks has zero capacity — exactly the mask a failed middle leaves
/// behind. Partially-reachable middles (some links derated or dead) are
/// alive; the capacity-aware layers handle them via ordinary capacities.
[[nodiscard]] bool middle_alive(const ClosNetwork& net, int m);

/// The alive middles, ascending. Empty iff every middle is dead.
[[nodiscard]] std::vector<int> surviving_middles(const ClosNetwork& net);

/// True when the *surviving* middles are capacity-interchangeable: for every
/// input ToR all surviving uplink capacities are equal, and for every output
/// ToR all surviving downlink capacities are equal. Failed middles break the
/// full-label symmetry (`ClosNetwork::middles_symmetric()`), but permuting
/// the surviving labels among themselves is still a capacity-preserving
/// automorphism — this predicate licenses canonical enumeration quotiented
/// over the surviving middles only (routing/search_engine.hpp). Trivially
/// true with at most one survivor.
[[nodiscard]] bool surviving_middles_symmetric(const ClosNetwork& net);

/// True when middle m is usable by a src_tor -> dst_tor flow: both the uplink
/// I_src_tor -> M_m and the downlink M_m -> O_dst_tor have positive capacity.
[[nodiscard]] bool middle_usable(const ClosNetwork& net, int src_tor, int dst_tor, int m);

/// True when any uplink or downlink of the fabric has zero capacity — the
/// cheap gate routing heuristics use to skip per-flow usability filtering on
/// pristine fabrics.
[[nodiscard]] bool has_dead_fabric_links(const ClosNetwork& net);

/// Independent link failures: every uplink and downlink dies with probability
/// p (uplinks first, ToR-major; then downlinks, middle-major — the draw order
/// is part of the deterministic contract). Factors are all zero.
[[nodiscard]] FailureScenario sample_link_failures(const ClosNetwork& net, double p,
                                                   Rng& rng);

/// k-random-middle outage: k distinct middles chosen uniformly, listed
/// ascending. k in [0, num_middles].
[[nodiscard]] FailureScenario sample_middle_outage(const ClosNetwork& net, int k, Rng& rng);

/// Targeted worst-case outage: fails the k middles carrying the most
/// surviving fabric capacity (sum of their uplink + downlink capacities),
/// ties broken toward the lowest index. On a pristine symmetric fabric this
/// is middles 1..k — the adversary gains nothing from the choice, but on an
/// already-degraded fabric it removes the most valuable survivors.
[[nodiscard]] FailureScenario worst_case_outage(const ClosNetwork& net, int k);

/// Moves every flow whose current 4-link path crosses a zero-capacity link to
/// the usable middle minimizing the resulting unit-demand max congestion
/// (deterministic: flows in index order, ties toward the lowest middle).
/// Flows with no usable middle — dead source/destination link, or every
/// middle unusable for their ToR pair — keep their assignment and stay
/// starved. Returns the number of flows moved; bumps fault.reroutes.
std::size_t reroute_dead_paths(const ClosNetwork& net, const FlowSet& flows,
                               MiddleAssignment& middles);

}  // namespace closfair::fault
