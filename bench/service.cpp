// service — batch-evaluation service benchmark (src/svc).
//
//   $ ./service [OUT.json]
//
// Drives a mixed batch of 100+ ScenarioSpec requests (stochastic Clos
// sweeps, fat-tree cells, macro-only references, inline adversarial
// instances with worst-case outages, replication feasibility, and exact
// exhaustive-search cells) through svc::Service and gates the service's two
// contracts:
//
//   1. Determinism: the full batch returns byte-identical responses (hash,
//      cached flag, result JSON) from fresh services at 1, 2, and 8 workers,
//      and in-batch duplicates resolve as dedup hits.
//   2. Cache efficacy: re-submitting a batch hits the content-addressed
//      cache at >= 99%, and on the exhaustive-search subset the warm
//      throughput is >= 10x the cold throughput.
//   3. Deltas: every delta class (add-flow, remove-flow, fail-middle,
//      derate-link, objective-switch) warm-starts to a result byte-identical
//      to the cold evaluation of the patched spec at 1/2/8 workers, and the
//      objective switch over an exhaustive-search base is >= 5x faster warm.
//
// Emits BENCH_service.json (path overridable): scenarios/sec cold vs warm,
// hit rates, the determinism digest, and the obs registry snapshot (svc.* /
// waterfill.* / search.* counters) under a "metrics" key — scripts/bench.sh
// diffs the deterministic counters against the committed baseline. Exits
// non-zero if any gate fails.
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/adversarial.hpp"
#include "io/json_export.hpp"
#include "io/text_format.hpp"
#include "obs/obs.hpp"
#include "svc/service.hpp"
#include "util/json.hpp"
#include "util/table.hpp"

using namespace closfair;

namespace {

int failures = 0;

void check(bool ok, const std::string& what) {
  if (!ok) {
    std::cerr << "CHECK FAILED: " << what << '\n';
    ++failures;
  }
}

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

std::string inline_instance(int n, const AdversarialInstance& inst, bool with_rates) {
  InstanceSpec is;
  is.params = ClosNetwork::Params{n, 2 * n, n, Rational{1}};
  is.flows = inst.flows;
  if (with_rates) is.rates.assign(inst.macro_rates.begin(), inst.macro_rates.end());
  return format_instance(is);
}

svc::ScenarioSpec clos3_cell(const char* generator, std::uint64_t seed,
                             const char* policy) {
  svc::ScenarioSpec spec;
  spec.topology.params = ClosNetwork::Params{3, 6, 3, Rational{1}};
  spec.workload.generator = generator;
  spec.workload.seed = seed;
  if (std::string(generator) != "permutation") spec.workload.count = 24;
  if (std::string(generator) == "zipf") spec.workload.skew = 1.2;
  if (std::string(generator) == "hotspot") {
    spec.workload.hot_tor = 1;
    spec.workload.hot_fraction = 0.5;
  }
  if (std::string(generator) == "incast") {
    spec.workload.count = 8;
    spec.workload.dst_tor = 1;
    spec.workload.dst_server = 1;
  }
  spec.routing.policy = policy;
  if (std::string(policy) == "lex_climb") spec.routing.max_moves = 200;
  return spec;
}

/// The full mixed request set. The final `duplicates` entries repeat the
/// head of the batch verbatim, exercising in-batch dedup.
std::vector<svc::ScenarioSpec> build_batch(std::size_t duplicates) {
  std::vector<svc::ScenarioSpec> specs;

  // Stochastic Clos sweep: 5 seeded generators x 4 policies x 4 seeds.
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    for (const char* wl : {"uniform", "permutation", "zipf", "hotspot", "incast"}) {
      for (const char* policy : {"ecmp", "greedy", "local_search", "lex_climb"}) {
        specs.push_back(clos3_cell(wl, seed, policy));
      }
    }
  }

  // Deterministic generators under demand-aware and LP-guided policies.
  for (const char* wl : {"stride", "all_to_all"}) {
    for (const char* policy : {"greedy", "doom", "lp_round"}) {
      svc::ScenarioSpec spec;
      spec.topology.params = ClosNetwork::Params{3, 6, 3, Rational{1}};
      spec.workload.generator = wl;
      if (std::string(wl) == "stride") spec.workload.stride = 3;
      spec.routing.policy = policy;
      if (std::string(policy) == "lp_round") {
        spec.routing.seed = 7;
        spec.routing.attempts = 4;
      }
      specs.push_back(spec);
    }
  }

  // Macro-only references under both objectives.
  for (const char* objective : {"maxmin", "maxmin_lp"}) {
    svc::ScenarioSpec spec;
    spec.topology.kind = "macro";
    spec.topology.params = ClosNetwork::Params{3, 6, 3, Rational{1}};
    spec.workload.generator = "permutation";
    spec.workload.seed = 11;
    spec.routing.policy = "none";
    spec.objective = objective;
    specs.push_back(spec);
  }

  // Fat-tree cells through the topology-generic routing layer.
  for (std::uint64_t seed = 1; seed <= 2; ++seed) {
    for (const char* policy : {"ecmp", "greedy", "local_search"}) {
      svc::ScenarioSpec spec;
      spec.topology.kind = "fattree";
      spec.topology.fattree_k = 4;
      spec.workload.generator = "uniform";
      spec.workload.count = 24;
      spec.workload.seed = seed;
      spec.routing.policy = policy;
      specs.push_back(spec);
    }
  }

  // Inline adversarial instance + witness start + worst-case outages.
  {
    const AdversarialInstance inst = theorem_4_3_instance(3);
    for (int f : {0, 1}) {
      svc::ScenarioSpec spec;
      spec.workload.instance = inline_instance(3, inst, false);
      spec.topology.params = ClosNetwork::Params{3, 6, 3, Rational{1}};
      spec.routing.policy = "lex_climb";
      spec.routing.start = *inst.witness;
      spec.routing.reroute_dead = true;
      spec.fault.worst_case_outage = f;
      specs.push_back(spec);
    }
  }

  // Replication feasibility (the §4.1 question) on the Theorem 4.2 gadget.
  {
    const AdversarialInstance inst = theorem_4_2_instance(3);
    svc::ScenarioSpec spec;
    spec.workload.instance = inline_instance(3, inst, true);
    spec.topology.params = ClosNetwork::Params{3, 6, 3, Rational{1}};
    spec.routing.policy = "replicate";
    specs.push_back(spec);
  }

  // Exact exhaustive-search cells — the expensive subset the cold/warm
  // throughput gate times separately (see exhaustive_subset()).
  for (const auto& [n, k] : {std::pair{3, 1}, std::pair{5, 2}}) {
    const AdversarialInstance inst = theorem_5_4_instance(n, k);
    const std::string instance = inline_instance(n, inst, false);
    for (int f : {0, 1}) {
      for (const char* policy : {"exhaustive_lex", "exhaustive_tput"}) {
        svc::ScenarioSpec spec;
        spec.workload.instance = instance;
        spec.topology.params = ClosNetwork::Params{n, 2 * n, n, Rational{1}};
        spec.routing.policy = policy;
        spec.routing.prune_throughput_bound = false;
        spec.fault.worst_case_outage = f;
        specs.push_back(spec);
      }
    }
  }

  for (std::size_t i = 0; i < duplicates; ++i) specs.push_back(specs[i]);
  return specs;
}

std::vector<svc::ScenarioSpec> exhaustive_subset(const std::vector<svc::ScenarioSpec>& all) {
  std::vector<svc::ScenarioSpec> subset;
  for (const svc::ScenarioSpec& spec : all) {
    if (spec.routing.policy.rfind("exhaustive_", 0) == 0) subset.push_back(spec);
  }
  return subset;
}

/// Byte-for-byte response transcript: what the determinism contract promises
/// to be identical at every worker count.
std::string digest(const std::vector<svc::BatchEntry>& entries) {
  std::string out;
  char hex[17];
  for (const svc::BatchEntry& entry : entries) {
    std::snprintf(hex, sizeof(hex), "%016llx", static_cast<unsigned long long>(entry.hash));
    out += hex;
    out += entry.cached ? "|hit|" : "|miss|";
    out += entry.ok() ? entry.result.to_json().dump() : entry.error;
    out += '\n';
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_service.json";
  if (argc > 1) out_path = argv[1];
  if (argc > 2 || (!out_path.empty() && out_path[0] == '-')) {
    std::cerr << "usage: service [OUT.json]\n";
    return 2;
  }
  obs::Registry::instance().reset();

  const std::size_t kDuplicates = 8;
  const std::vector<svc::ScenarioSpec> batch = build_batch(kDuplicates);
  const std::vector<svc::ScenarioSpec> exhaustive = exhaustive_subset(batch);
  std::cout << "=== svc benchmark: " << batch.size() << " mixed requests ("
            << kDuplicates << " in-batch duplicates, " << exhaustive.size()
            << " exhaustive cells) ===\n\n";

  Json report = Json::object();
  report.set("bench", Json::string("service"));
  report.set("requests", Json::number(static_cast<std::int64_t>(batch.size())));
  report.set("duplicates", Json::number(static_cast<std::int64_t>(kDuplicates)));

  // ------------------------------------------------- determinism across workers
  std::cout << "--- determinism: fresh service per worker count ---\n";
  TextTable table_d({"workers", "seconds", "scenarios/sec", "identical"});
  std::string reference;
  double cold_1worker = 0.0;
  for (const unsigned workers : {1u, 2u, 8u}) {
    svc::Service service(svc::ServiceOptions{workers, 512});
    const auto start = std::chrono::steady_clock::now();
    const std::vector<svc::BatchEntry> entries = service.evaluate_batch(batch);
    const double secs = seconds_since(start);
    if (workers == 1u) cold_1worker = secs;

    const std::string d = digest(entries);
    const bool identical = reference.empty() || d == reference;
    if (reference.empty()) reference = d;
    check(identical, "determinism: " + std::to_string(workers) +
                         "-worker batch is byte-identical to the 1-worker batch");
    for (std::size_t i = 0; i < entries.size(); ++i) {
      check(entries[i].ok(), "request " + std::to_string(i) + " succeeds: " + entries[i].error);
    }
    for (std::size_t i = batch.size() - kDuplicates; i < batch.size(); ++i) {
      check(entries[i].cached, "duplicate request " + std::to_string(i) + " is a dedup hit");
    }
    table_d.add_row({std::to_string(workers), fmt_double(secs, 3),
                     fmt_double(static_cast<double>(batch.size()) / secs, 1),
                     identical ? "yes" : "NO"});
  }
  std::cout << table_d << '\n';
  report.set("determinism_digest_fnv",
             Json::string([&] {
               char hex[17];
               std::snprintf(hex, sizeof(hex), "%016llx",
                             static_cast<unsigned long long>(svc::fnv1a64(reference)));
               return std::string(hex);
             }()));
  report.set("cold_seconds_1worker", Json::number(cold_1worker));

  // ------------------------------------------------- full-batch repeat hit rate
  std::cout << "--- cache: full-batch resubmission ---\n";
  double repeat_hit_rate = 0.0;
  {
    svc::Service service(svc::ServiceOptions{2, 512});
    (void)service.evaluate_batch(batch);
    const std::vector<svc::BatchEntry> warm = service.evaluate_batch(batch);
    std::size_t hits = 0;
    for (const svc::BatchEntry& entry : warm) hits += entry.cached ? 1 : 0;
    repeat_hit_rate = static_cast<double>(hits) / static_cast<double>(warm.size());
    check(repeat_hit_rate >= 0.99, "repeat hit rate >= 99%");
    std::cout << "hit rate on resubmission: " << fmt_double(repeat_hit_rate * 100.0, 1)
              << "% (" << hits << '/' << warm.size() << ")\n\n";
  }
  report.set("repeat_hit_rate", Json::number(repeat_hit_rate));

  // ----------------------------------------- cold vs warm on exhaustive cells
  std::cout << "--- cache: cold vs warm throughput (exhaustive cells) ---\n";
  {
    svc::Service service(svc::ServiceOptions{2, 512});
    const auto cold_start = std::chrono::steady_clock::now();
    (void)service.evaluate_batch(exhaustive);
    const double cold_secs = seconds_since(cold_start);

    const int kWarmRounds = 10;
    const auto warm_start = std::chrono::steady_clock::now();
    std::size_t warm_hits = 0;
    for (int round = 0; round < kWarmRounds; ++round) {
      const std::vector<svc::BatchEntry> warm = service.evaluate_batch(exhaustive);
      for (const svc::BatchEntry& entry : warm) warm_hits += entry.cached ? 1 : 0;
    }
    const double warm_secs = seconds_since(warm_start) / kWarmRounds;

    const double cold_rate = static_cast<double>(exhaustive.size()) / cold_secs;
    const double warm_rate = static_cast<double>(exhaustive.size()) / warm_secs;
    const double speedup = warm_rate / cold_rate;
    const double warm_hit_rate = static_cast<double>(warm_hits) /
                                 static_cast<double>(exhaustive.size() * kWarmRounds);
    check(warm_hit_rate >= 0.99, "warm hit rate >= 99% on exhaustive cells");
    check(speedup >= 10.0, "warm throughput >= 10x cold on exhaustive cells");

    TextTable table_w({"phase", "seconds/batch", "scenarios/sec"});
    table_w.add_row({"cold", fmt_double(cold_secs, 4), fmt_double(cold_rate, 1)});
    table_w.add_row({"warm", fmt_double(warm_secs, 6), fmt_double(warm_rate, 1)});
    std::cout << table_w << "warm/cold speedup: " << fmt_double(speedup, 1)
              << "x, warm hit rate " << fmt_double(warm_hit_rate * 100.0, 1) << "%\n\n";

    Json cw = Json::object();
    cw.set("cells", Json::number(static_cast<std::int64_t>(exhaustive.size())));
    cw.set("cold_seconds", Json::number(cold_secs));
    cw.set("warm_seconds", Json::number(warm_secs));
    cw.set("cold_scenarios_per_sec", Json::number(cold_rate));
    cw.set("warm_scenarios_per_sec", Json::number(warm_rate));
    cw.set("warm_speedup", Json::number(speedup));
    cw.set("warm_hit_rate", Json::number(warm_hit_rate));
    report.set("cold_warm", std::move(cw));
  }

  // ----------------------------------------------- delta warm vs cold per class
  std::cout << "--- deltas: warm == cold bytes per class, warm/cold speedup ---\n";
  {
    struct DeltaClass {
      const char* name;
      svc::ScenarioSpec base;
      const char* patch;
    };

    // Flow-edit bases need an inline instance (and no witness start).
    const AdversarialInstance gadget = theorem_4_3_instance(3);
    svc::ScenarioSpec flows_base;
    flows_base.workload.instance = inline_instance(3, gadget, false);
    flows_base.topology.params = ClosNetwork::Params{3, 6, 3, Rational{1}};
    flows_base.routing.policy = "greedy";

    // The objective switch rides on an exhaustive-search base: the patched
    // spec's routing is objective-independent and the two objectives agree
    // exactly, so the warm path returns the base result without re-running
    // the search — the class the >= 5x gate targets.
    const AdversarialInstance hard = theorem_5_4_instance(5, 2);
    svc::ScenarioSpec exhaustive_base;
    exhaustive_base.workload.instance = inline_instance(5, hard, false);
    exhaustive_base.topology.params = ClosNetwork::Params{5, 10, 5, Rational{1}};
    exhaustive_base.routing.policy = "exhaustive_lex";

    const std::vector<DeltaClass> classes = {
        {"add_flow", flows_base,
         R"({"add_flows":[{"src_tor":1,"src_server":1,"dst_tor":2,"dst_server":2}]})"},
        {"remove_flow", flows_base, R"({"remove_flows":[0]})"},
        {"fail_middle", clos3_cell("uniform", 1, "greedy"), R"({"fail_middles":[1]})"},
        {"derate_link", clos3_cell("uniform", 2, "greedy"),
         R"({"derate_links":[{"stage":"uplink","tor":1,"middle":1,"factor":"1/2"}]})"},
        {"objective_switch", exhaustive_base, R"({"objective":"maxmin_lp"})"},
    };

    TextTable table_delta({"class", "warm_ms", "cold_ms", "speedup", "identical"});
    Json delta_report = Json::object();
    double objective_speedup = 0.0;
    for (const DeltaClass& dc : classes) {
      char hex[17];
      std::snprintf(hex, sizeof(hex), "%016llx",
                    static_cast<unsigned long long>(dc.base.content_hash()));
      const svc::DeltaRequest delta = svc::DeltaRequest::from_json(Json::parse(
          std::string("{\"base\":\"") + hex + "\",\"patch\":" + dc.patch + "}"));
      const svc::ScenarioSpec patched = delta.patch.apply(dc.base);

      bool identical = true;
      double warm_secs = 0.0;
      double cold_secs = 0.0;
      for (const unsigned workers : {1u, 2u, 8u}) {
        svc::Service warm_service(svc::ServiceOptions{workers, 64});
        const svc::BatchEntry base_entry = warm_service.evaluate(dc.base);
        check(base_entry.ok(), std::string("delta base (") + dc.name + ") evaluates: " +
                                   base_entry.error);
        const auto warm_t0 = std::chrono::steady_clock::now();
        const svc::BatchEntry warm = warm_service.evaluate_delta(delta);
        const double warm_s = seconds_since(warm_t0);

        // Resubmit the same delta: the patched spec is now committed, so this
        // must land as a cache hit (svc.delta_hits) — the exactly-gated
        // counter in scripts/bench.sh depends on these scripted hits.
        const svc::BatchEntry again = warm_service.evaluate_delta(delta);
        check(again.cached,
              std::string("delta ") + dc.name + " resubmission served from cache");

        svc::Service cold_service(svc::ServiceOptions{workers, 64});
        const auto cold_t0 = std::chrono::steady_clock::now();
        const svc::BatchEntry cold = cold_service.evaluate(patched);
        const double cold_s = seconds_since(cold_t0);

        check(warm.ok(), std::string("delta ") + dc.name + " warm evaluation: " + warm.error);
        check(cold.ok(), std::string("delta ") + dc.name + " cold evaluation: " + cold.error);
        const std::string warm_bytes = digest({warm});
        const std::string cold_bytes = digest({cold});
        identical = identical && warm_bytes == cold_bytes;
        check(warm_bytes == cold_bytes,
              std::string("delta ") + dc.name + " warm == cold bytes at " +
                  std::to_string(workers) + " workers");
        if (workers == 1u) {
          warm_secs = warm_s;
          cold_secs = cold_s;
        }
      }
      const double speedup = warm_secs > 0.0 ? cold_secs / warm_secs : 0.0;
      if (std::string(dc.name) == "objective_switch") objective_speedup = speedup;
      table_delta.add_row({dc.name, fmt_double(warm_secs * 1e3, 3),
                           fmt_double(cold_secs * 1e3, 3), fmt_double(speedup, 1),
                           identical ? "yes" : "NO"});
      Json cls = Json::object();
      cls.set("warm_seconds", Json::number(warm_secs));
      cls.set("cold_seconds", Json::number(cold_secs));
      cls.set("warm_speedup", Json::number(speedup));
      cls.set("identical", Json::boolean(identical));
      delta_report.set(dc.name, std::move(cls));
    }
    check(objective_speedup >= 5.0,
          "objective_switch delta warm >= 5x cold over the exhaustive base");
    std::cout << table_delta << '\n';
    report.set("delta", std::move(delta_report));
  }

  Json checks = Json::object();
  checks.set("failed", Json::number(static_cast<std::int64_t>(failures)));
  report.set("checks", std::move(checks));
  report.set("metrics", metrics_to_json(obs::Registry::instance().snapshot()));

  std::ofstream out(out_path);
  out << report.dump(2) << '\n';
  out.close();
  if (!out) {
    std::cerr << "error: could not write report to " << out_path << '\n';
    return 1;
  }
  std::cout << "report written to " << out_path << '\n';

  if (failures > 0) {
    std::cerr << failures << " check(s) FAILED\n";
    return 1;
  }
  std::cout << "all checks passed\n";
  return 0;
}
