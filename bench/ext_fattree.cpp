// E12 (extension) — do the paper's Clos results carry to deployed fat-trees?
//
// A k-ary fat-tree is the folded multi-stage Clos of real data centers
// (Al-Fares et al. [2]). This bench ports the evaluation to FatTree(k):
// stochastic workloads under generic-path ECMP / greedy / local-search vs
// the fat-tree's macro-switch, plus the Theorem 3.4 gadget (R1 is
// topology-independent, so its price of fairness must appear verbatim).
#include <iostream>

#include "core/metrics.hpp"
#include "fairness/waterfill.hpp"
#include "net/fattree.hpp"
#include "net/macroswitch.hpp"
#include "routing/generic.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "workload/stochastic.hpp"

using namespace closfair;

int main() {
  const int k = 4;
  const FatTree ft(k);
  const int tors = ft.num_edge_switches();
  const int servers = ft.servers_per_edge();
  const MacroSwitch ms(MacroSwitch::Params{tors, servers, Rational{1}});
  const Fabric fabric{tors, servers};

  std::cout << "=== E12: fat-tree (k = " << k << ", " << ft.num_servers()
            << " servers) vs its macro-switch ===\n\n";

  std::cout << "stochastic workloads (5 seeds per cell):\n";
  TextTable table({"workload", "algorithm", "min rate ratio", "mean rate ratio",
                   "tput ratio", "jain (fat-tree)"});
  struct Wl {
    const char* name;
    int kind;
  };
  struct Algo {
    const char* name;
    int kind;  // 0 ecmp, 1 greedy, 2 local-search
  };
  for (const Wl& wl : {Wl{"uniform-32", 0}, Wl{"permutation", 1}, Wl{"zipf1.1-32", 2}}) {
    for (const Algo& algo : {Algo{"ecmp", 0}, Algo{"greedy", 1}, Algo{"local-search", 2}}) {
      double min_ratio = 1.0;
      double mean_sum = 0.0;
      double tput_sum = 0.0;
      double jain_sum = 0.0;
      const int seeds = 5;
      for (int seed = 0; seed < seeds; ++seed) {
        Rng rng(static_cast<std::uint64_t>(seed) * 307 + wl.kind * 13 + 5);
        FlowCollection specs;
        switch (wl.kind) {
          case 0: specs = uniform_random(fabric, 32, rng); break;
          case 1: specs = random_permutation(fabric, rng); break;
          default: specs = zipf_destinations(fabric, 32, 1.1, rng); break;
        }
        const FlowSet flows = instantiate(ft, specs);
        const auto macro = max_min_fair<Rational>(ms, instantiate(ms, specs));

        PathCandidates candidates;
        candidates.reserve(flows.size());
        for (const Flow& f : flows) candidates.push_back(ft.paths(f.src, f.dst));
        std::vector<double> demands;
        for (FlowIndex f = 0; f < flows.size(); ++f) {
          demands.push_back(macro.rate(f).to_double());
        }

        Routing routing;
        switch (algo.kind) {
          case 0: routing = ecmp_paths(candidates, rng); break;
          case 1: routing = greedy_paths(ft.topology(), candidates, demands); break;
          default:
            routing = congestion_local_search_paths(
                ft.topology(), candidates, demands,
                greedy_paths(ft.topology(), candidates, demands));
            break;
        }
        const auto alloc = max_min_fair<Rational>(ft.topology(), flows, routing);

        double worst = 1.0;
        double mean = 0.0;
        std::size_t counted = 0;
        for (FlowIndex f = 0; f < flows.size(); ++f) {
          if (macro.rate(f).is_zero()) continue;
          const double ratio = (alloc.rate(f) / macro.rate(f)).to_double();
          worst = std::min(worst, ratio);
          mean += ratio;
          ++counted;
        }
        min_ratio = std::min(min_ratio, worst);
        mean_sum += counted ? mean / static_cast<double>(counted) : 1.0;
        tput_sum += (alloc.throughput() / macro.throughput()).to_double();
        jain_sum += jain_index(alloc);
      }
      table.add_row({wl.name, algo.name, fmt_double(min_ratio, 3),
                     fmt_double(mean_sum / seeds, 3), fmt_double(tput_sum / seeds, 3),
                     fmt_double(jain_sum / seeds, 3)});
    }
  }
  std::cout << table << '\n';

  std::cout << "Theorem 3.4 gadget on the fat-tree (R1 is topology-independent):\n";
  {
    TextTable gadget({"k (type2 flows)", "T^MmF meas", "1 + 1/(k+1)", "T^MT", "ratio"});
    for (int kk : {1, 8, 64}) {
      // Gadget between two edge switches of different pods.
      FlowCollection specs = {FlowSpec{1, 1, 1, 1}, FlowSpec{3, 1, 3, 1}};
      for (int c = 0; c < kk; ++c) specs.push_back(FlowSpec{3, 1, 1, 1});
      const FlowSet flows = instantiate(ft, specs);
      PathCandidates candidates;
      for (const Flow& f : flows) candidates.push_back(ft.paths(f.src, f.dst));
      const std::vector<double> unit(flows.size(), 1.0);
      const Routing routing = greedy_paths(ft.topology(), candidates, unit);
      const auto alloc = max_min_fair<Rational>(ft.topology(), flows, routing);
      const Rational expected = Rational{1} + Rational{1, kk + 1};
      gadget.add_row({std::to_string(kk), alloc.throughput().to_string(),
                      expected.to_string(), "2",
                      fmt_double(alloc.throughput().to_double() / 2.0, 4)});
    }
    std::cout << gadget << '\n';
  }

  std::cout << "reading: the fat-tree behaves exactly like C_n through the macro lens —\n"
               "congestion-aware routing tracks the macro rates on stochastic loads, and\n"
               "R1's price of fairness (edge-link phenomenon) reproduces verbatim since\n"
               "it never involves the core.\n";
  return 0;
}
