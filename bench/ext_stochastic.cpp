// E6 — extended-version stochastic evaluation (§6): on stochastic inputs,
// congestion-aware routing approximates the macro-switch rates well.
//
// For each workload x routing algorithm: the worst and mean per-flow rate
// ratio (Clos max-min rate / macro-switch max-min rate) and the throughput
// ratio, averaged over seeds. ECMP, greedy (macro demands), congestion local
// search, and the lex hill-climbing heuristic are compared.
//
// Every cell is issued as a declarative ScenarioSpec through the
// closfair::svc batch service (sharded workers + content-addressed cache) —
// the numbers are identical to driving the routing stack directly, because
// seedless seeded policies continue the workload generator's Rng stream
// exactly as this bench historically did.
#include <algorithm>
#include <iostream>
#include <vector>

#include "svc/service.hpp"
#include "util/table.hpp"

using namespace closfair;

namespace {

struct Workload {
  const char* name;
  int kind;  // 0 uniform, 1 permutation, 2 zipf, 3 hotspot
};

struct Algo {
  const char* name;
  int kind;  // 0 ecmp, 1 greedy, 2 local search, 3 lex climb
};

svc::ScenarioSpec make_cell(const Workload& wl, const Algo& algo, int n, int seed) {
  svc::ScenarioSpec spec;
  spec.topology.kind = "clos";
  spec.topology.params = ClosNetwork::Params{n, 2 * n, n, Rational{1}};
  spec.workload.seed = static_cast<std::uint64_t>(seed) * 1009 + wl.kind * 31 + 7;
  switch (wl.kind) {
    case 0:
      spec.workload.generator = "uniform";
      spec.workload.count = 64;
      break;
    case 1:
      spec.workload.generator = "permutation";
      break;
    case 2:
      spec.workload.generator = "zipf";
      spec.workload.count = 64;
      spec.workload.skew = 1.1;
      break;
    default:
      spec.workload.generator = "hotspot";
      spec.workload.count = 64;
      spec.workload.hot_tor = 1;
      spec.workload.hot_fraction = 0.5;
      break;
  }
  switch (algo.kind) {
    case 0:
      spec.routing.policy = "ecmp";  // no seed: continues the workload stream
      break;
    case 1:
      spec.routing.policy = "greedy";
      break;
    case 2:
      spec.routing.policy = "local_search";
      break;
    default:
      spec.routing.policy = "lex_climb";
      spec.routing.max_moves = 400;
      break;
  }
  return spec;
}

}  // namespace

int main() {
  std::cout << "=== E6: stochastic inputs — Clos rates vs macro-switch rates ===\n";
  std::cout << "(C_4: 8 ToRs x 4 servers, 5 seeds per cell, via closfair::svc)\n\n";

  const int n = 4;
  const int seeds = 5;
  const Workload workloads[] = {{"uniform-64", 0}, {"permutation", 1},
                                {"zipf1.1-64", 2}, {"hotspot50-64", 3}};
  const Algo algos[] = {{"ecmp", 0}, {"greedy", 1}, {"local-search", 2}, {"lex-climb", 3}};

  // One batch of every cell; the service shards them over 4 workers.
  std::vector<svc::ScenarioSpec> cells;
  for (const auto& wl : workloads) {
    for (const auto& algo : algos) {
      for (int seed = 0; seed < seeds; ++seed) cells.push_back(make_cell(wl, algo, n, seed));
    }
  }
  svc::Service service(svc::ServiceOptions{4, 256});
  const std::vector<svc::BatchEntry> batch = service.evaluate_batch(cells);

  TextTable table({"workload", "algorithm", "min rate ratio", "mean rate ratio",
                   "throughput ratio"});
  std::size_t cell = 0;
  for (const auto& wl : workloads) {
    for (const auto& algo : algos) {
      double min_ratio = 1.0;
      double sum_mean = 0.0;
      double sum_tput = 0.0;
      for (int seed = 0; seed < seeds; ++seed, ++cell) {
        const svc::BatchEntry& entry = batch[cell];
        if (!entry.ok()) {
          std::cerr << "cell failed: " << entry.error << '\n';
          return 1;
        }
        const svc::ScenarioResult& r = entry.result;
        double worst = 1.0;
        double mean = 0.0;
        std::size_t counted = 0;
        for (std::size_t f = 0; f < r.num_flows; ++f) {
          if (r.macro_rates[f].is_zero()) continue;
          const double ratio = (r.rates[f] / r.macro_rates[f]).to_double();
          worst = std::min(worst, ratio);
          mean += ratio;
          ++counted;
        }
        min_ratio = std::min(min_ratio, worst);
        sum_mean += counted > 0 ? mean / static_cast<double>(counted) : 1.0;
        sum_tput += (r.throughput / r.macro_throughput).to_double();
      }
      table.add_row({wl.name, algo.name, fmt_double(min_ratio, 3),
                     fmt_double(sum_mean / seeds, 3), fmt_double(sum_tput / seeds, 3)});
    }
  }
  std::cout << table << '\n';

  std::cout << "paper shape (§6): algorithms that borrow macro-switch rates and route\n"
               "by path congestion (greedy/local-search) track the macro rates closely\n"
               "on stochastic inputs; ECMP trails; nothing collapses to the 1/n worst\n"
               "case seen in E7.\n";
  return 0;
}
