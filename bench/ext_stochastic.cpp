// E6 — extended-version stochastic evaluation (§6): on stochastic inputs,
// congestion-aware routing approximates the macro-switch rates well.
//
// For each workload x routing algorithm: the worst and mean per-flow rate
// ratio (Clos max-min rate / macro-switch max-min rate) and the throughput
// ratio, averaged over seeds. ECMP, greedy (macro demands), congestion local
// search, and the lex hill-climbing heuristic are compared.
#include <iostream>

#include "core/analysis.hpp"
#include "fairness/waterfill.hpp"
#include "routing/ecmp.hpp"
#include "routing/greedy.hpp"
#include "routing/local_search.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "workload/stochastic.hpp"

using namespace closfair;

namespace {

struct Algo {
  const char* name;
  int kind;  // 0 ecmp, 1 greedy, 2 local search, 3 lex climb
};

MiddleAssignment route(const Algo& algo, const ClosNetwork& net, const FlowSet& flows,
                       const Allocation<Rational>& macro, Rng& rng) {
  std::vector<double> demands;
  demands.reserve(flows.size());
  for (FlowIndex f = 0; f < flows.size(); ++f) demands.push_back(macro.rate(f).to_double());
  switch (algo.kind) {
    case 0:
      return ecmp_routing(net, flows, rng);
    case 1:
      return greedy_routing(net, flows, demands);
    case 2:
      return congestion_local_search(net, flows, demands,
                                     greedy_routing(net, flows, demands));
    default: {
      LocalSearchOptions options;
      options.max_moves = 400;
      return lex_max_min_local_search(net, flows, greedy_routing(net, flows, demands),
                                      options)
          .middles;
    }
  }
}

}  // namespace

int main() {
  std::cout << "=== E6: stochastic inputs — Clos rates vs macro-switch rates ===\n";
  std::cout << "(C_4: 8 ToRs x 4 servers, 5 seeds per cell)\n\n";

  const int n = 4;
  const int seeds = 5;
  const ClosNetwork net = ClosNetwork::paper(n);
  const MacroSwitch ms = MacroSwitch::paper(n);
  const Fabric fabric{2 * n, n};

  struct Workload {
    const char* name;
    int kind;
  };
  const Workload workloads[] = {{"uniform-64", 0}, {"permutation", 1},
                                {"zipf1.1-64", 2}, {"hotspot50-64", 3}};
  const Algo algos[] = {{"ecmp", 0}, {"greedy", 1}, {"local-search", 2}, {"lex-climb", 3}};

  TextTable table({"workload", "algorithm", "min rate ratio", "mean rate ratio",
                   "throughput ratio"});
  for (const auto& wl : workloads) {
    for (const auto& algo : algos) {
      double min_ratio = 1.0;
      double sum_mean = 0.0;
      double sum_tput = 0.0;
      for (int seed = 0; seed < seeds; ++seed) {
        Rng rng(static_cast<std::uint64_t>(seed) * 1009 + wl.kind * 31 + 7);
        FlowCollection specs;
        switch (wl.kind) {
          case 0: specs = uniform_random(fabric, 64, rng); break;
          case 1: specs = random_permutation(fabric, rng); break;
          case 2: specs = zipf_destinations(fabric, 64, 1.1, rng); break;
          default: specs = hotspot(fabric, 64, 1, 0.5, rng); break;
        }
        const FlowSet flows = instantiate(net, specs);
        const auto macro = max_min_fair<Rational>(ms, instantiate(ms, specs));
        const MiddleAssignment middles = route(algo, net, flows, macro, rng);
        const auto clos = max_min_fair<Rational>(net, flows, middles);

        double worst = 1.0;
        double mean = 0.0;
        std::size_t counted = 0;
        for (FlowIndex f = 0; f < flows.size(); ++f) {
          if (macro.rate(f).is_zero()) continue;
          const double ratio = (clos.rate(f) / macro.rate(f)).to_double();
          worst = std::min(worst, ratio);
          mean += ratio;
          ++counted;
        }
        min_ratio = std::min(min_ratio, worst);
        sum_mean += counted > 0 ? mean / static_cast<double>(counted) : 1.0;
        sum_tput += (clos.throughput() / macro.throughput()).to_double();
      }
      table.add_row({wl.name, algo.name, fmt_double(min_ratio, 3),
                     fmt_double(sum_mean / seeds, 3), fmt_double(sum_tput / seeds, 3)});
    }
  }
  std::cout << table << '\n';

  std::cout << "paper shape (§6): algorithms that borrow macro-switch rates and route\n"
               "by path congestion (greedy/local-search) track the macro rates closely\n"
               "on stochastic inputs; ECMP trails; nothing collapses to the 1/n worst\n"
               "case seen in E7.\n";
  return 0;
}
