// E9 — engineering microbenchmarks (google-benchmark): scaling of the
// library's algorithmic core. Not a paper experiment; documents that the
// exact machinery is fast enough for the instance sizes the theory benches
// and tests use.
#include <benchmark/benchmark.h>

#include "fairness/waterfill.hpp"
#include "lp/maxmin_lp.hpp"
#include "lp/splittable.hpp"
#include "matching/edge_coloring.hpp"
#include "matching/flow_graphs.hpp"
#include "matching/hopcroft_karp.hpp"
#include "matching/hungarian.hpp"
#include "obs/obs.hpp"
#include "obs/trace.hpp"
#include "routing/doom_switch.hpp"
#include "routing/ecmp.hpp"
#include "routing/exhaustive.hpp"
#include "routing/replication.hpp"
#include "sim/rate_control.hpp"
#include "util/rng.hpp"
#include "workload/stochastic.hpp"

namespace closfair {
namespace {

struct Instance {
  ClosNetwork net;
  FlowSet flows;
  Routing routing;
};

Instance make_instance(int n, std::size_t num_flows, std::uint64_t seed) {
  ClosNetwork net = ClosNetwork::paper(n);
  Rng rng(seed);
  FlowSet flows =
      instantiate(net, uniform_random(Fabric{2 * n, n}, num_flows, rng));
  Routing routing = expand_routing(net, flows, ecmp_routing(net, flows, rng));
  return Instance{std::move(net), std::move(flows), std::move(routing)};
}

void BM_WaterfillRational(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto flows_count = static_cast<std::size_t>(state.range(1));
  const Instance inst = make_instance(n, flows_count, 42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        max_min_fair<Rational>(inst.net.topology(), inst.flows, inst.routing));
  }
  state.SetLabel("C_" + std::to_string(n) + ", " + std::to_string(flows_count) + " flows");
}
BENCHMARK(BM_WaterfillRational)->Args({2, 16})->Args({4, 64})->Args({8, 256})->Args({8, 1024});

void BM_WaterfillDouble(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto flows_count = static_cast<std::size_t>(state.range(1));
  const Instance inst = make_instance(n, flows_count, 42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        max_min_fair<double>(inst.net.topology(), inst.flows, inst.routing));
  }
}
BENCHMARK(BM_WaterfillDouble)->Args({2, 16})->Args({4, 64})->Args({8, 256})->Args({8, 1024});

// WaterfillWorkspace throughput, fast path vs forced Rational fallback, on
// the BENCH_search instance (C_4, 8 flows, seed 101). Each iteration is one
// max_min_rates call over a fixed deterministic 64-assignment cycle —
// items_per_second is water-fill calls per second; the ratio of the two
// benchmarks is the fast-path speedup (acceptance target >= 5x). The Fast
// variant also feeds the tier-1 Release perf smoke (scripts/tier1.sh) via
// the committed floor in bench/waterfill_floor.json.
void run_workspace_bench(benchmark::State& state, bool force_fallback) {
  const Instance inst = make_instance(4, 8, 101);
  WaterfillWorkspace workspace;
  workspace.bind(inst.net, inst.flows);
  workspace.set_force_fallback(force_fallback);
  Rng rng(202);
  std::vector<MiddleAssignment> cycle;
  for (int c = 0; c < 64; ++c) {
    MiddleAssignment middles(inst.flows.size());
    for (int& m : middles) m = 1 + static_cast<int>(rng.next_below(4));
    cycle.push_back(std::move(middles));
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(workspace.max_min_rates(cycle[i]));
    i = (i + 1) % cycle.size();
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_WaterfillWorkspaceFast(benchmark::State& state) {
  run_workspace_bench(state, false);
}
BENCHMARK(BM_WaterfillWorkspaceFast);

void BM_WaterfillWorkspaceFallback(benchmark::State& state) {
  run_workspace_bench(state, true);
}
BENCHMARK(BM_WaterfillWorkspaceFallback);

// Exhaustive-search engine: plain odometer vs canonical (symmetry-reduced)
// enumeration, serial vs parallel. The "waterfills" counter is the number of
// candidates actually evaluated — the acceptance metric for the canonical
// reduction (C_4, 8 flows: 65536 full / 16384 pinned odometer candidates vs
// 2795 canonical classes).
ExhaustiveOptions search_options(bool canonical, bool pin_first, unsigned threads) {
  ExhaustiveOptions options;
  options.exploit_middle_symmetry = canonical;
  options.fix_first_flow = pin_first;
  options.num_threads = threads;
  return options;
}

void run_lex_search(benchmark::State& state, const ExhaustiveOptions& options) {
  const Instance inst = make_instance(static_cast<int>(state.range(0)),
                                      static_cast<std::size_t>(state.range(1)), 101);
  std::uint64_t waterfills = 0;
  for (auto _ : state) {
    const auto result = lex_max_min_exhaustive(inst.net, inst.flows, options);
    waterfills = result.waterfill_invocations;
    benchmark::DoNotOptimize(result);
  }
  state.counters["waterfills"] = static_cast<double>(waterfills);
}

void BM_LexSearchOdometerFull(benchmark::State& state) {
  run_lex_search(state, search_options(false, false, 1));
}
BENCHMARK(BM_LexSearchOdometerFull)->Args({3, 6})->Args({4, 8})->Unit(benchmark::kMillisecond);

void BM_LexSearchOdometerPinned(benchmark::State& state) {
  run_lex_search(state, search_options(false, true, 1));
}
BENCHMARK(BM_LexSearchOdometerPinned)->Args({3, 6})->Args({4, 8})->Unit(benchmark::kMillisecond);

void BM_LexSearchCanonical(benchmark::State& state) {
  run_lex_search(state, search_options(true, true, 1));
}
BENCHMARK(BM_LexSearchCanonical)->Args({3, 6})->Args({4, 8})->Unit(benchmark::kMillisecond);

void BM_LexSearchCanonicalParallel(benchmark::State& state) {
  const auto threads = static_cast<unsigned>(state.range(2));
  run_lex_search(state, search_options(true, true, threads));
}
BENCHMARK(BM_LexSearchCanonicalParallel)
    ->Args({4, 8, 2})
    ->Args({4, 8, 8})
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

void BM_ThroughputSearchCanonical(benchmark::State& state) {
  const Instance inst = make_instance(3, 7, 103);
  for (auto _ : state) {
    benchmark::DoNotOptimize(throughput_max_min_exhaustive(inst.net, inst.flows));
  }
}
BENCHMARK(BM_ThroughputSearchCanonical)->Unit(benchmark::kMillisecond);

void BM_FrontierCanonical(benchmark::State& state) {
  const Instance inst = make_instance(3, 6, 105);
  for (auto _ : state) {
    benchmark::DoNotOptimize(throughput_fairness_frontier(inst.net, inst.flows));
  }
}
BENCHMARK(BM_FrontierCanonical)->Unit(benchmark::kMillisecond);

void BM_MaxMinLpRational(benchmark::State& state) {
  const auto flows_count = static_cast<std::size_t>(state.range(0));
  const Instance inst = make_instance(2, flows_count, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        max_min_fair_lp<Rational>(inst.net.topology(), inst.flows, inst.routing));
  }
}
BENCHMARK(BM_MaxMinLpRational)->Arg(4)->Arg(8)->Arg(16);

void BM_HopcroftKarp(benchmark::State& state) {
  const auto edges = static_cast<std::size_t>(state.range(0));
  Rng rng(13);
  BipartiteMultigraph g(edges / 2 + 1, edges / 2 + 1);
  for (std::size_t e = 0; e < edges; ++e) {
    g.add_edge(rng.next_below(g.num_left()), rng.next_below(g.num_right()));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(maximum_matching(g));
  }
}
BENCHMARK(BM_HopcroftKarp)->Arg(64)->Arg(512)->Arg(4096);

void BM_KonigColoring(benchmark::State& state) {
  const auto edges = static_cast<std::size_t>(state.range(0));
  Rng rng(17);
  BipartiteMultigraph g(32, 32);
  for (std::size_t e = 0; e < edges; ++e) {
    g.add_edge(rng.next_below(32), rng.next_below(32));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(edge_coloring(g));
  }
}
BENCHMARK(BM_KonigColoring)->Arg(64)->Arg(512)->Arg(4096);

void BM_DoomSwitch(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const Instance inst = make_instance(n, static_cast<std::size_t>(8 * n * n), 23);
  for (auto _ : state) {
    benchmark::DoNotOptimize(doom_switch(inst.net, inst.flows));
  }
}
BENCHMARK(BM_DoomSwitch)->Arg(2)->Arg(4)->Arg(8);

void BM_ReplicationFeasible(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const Instance inst = make_instance(n, static_cast<std::size_t>(4 * n), 29);
  const std::vector<Rational> rates(inst.flows.size(), Rational{1, 4});
  for (auto _ : state) {
    benchmark::DoNotOptimize(find_feasible_routing(inst.net, inst.flows, rates));
  }
}
BENCHMARK(BM_ReplicationFeasible)->Arg(2)->Arg(3)->Arg(4);

void BM_HungarianMatching(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(31);
  std::vector<std::vector<double>> weight(n, std::vector<double>(n));
  for (auto& row : weight) {
    for (double& w : row) w = static_cast<double>(rng.next_int(0, 100));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(max_weight_matching(weight));
  }
}
BENCHMARK(BM_HungarianMatching)->Arg(8)->Arg(32)->Arg(128);

void BM_SplittableLp(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const ClosNetwork net = ClosNetwork::paper(n);
  const MacroSwitch ms = MacroSwitch::paper(n);
  Rng rng(37);
  const FlowCollection specs =
      uniform_random(Fabric{2 * n, n}, static_cast<std::size_t>(4 * n), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(splittable_max_min(net, ms, specs));
  }
}
BENCHMARK(BM_SplittableLp)->Arg(2)->Arg(3);

void BM_RcpConvergence(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const Instance inst = make_instance(n, static_cast<std::size_t>(8 * n), 41);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        rcp_rate_control(inst.net.topology(), inst.flows, inst.routing));
  }
}
BENCHMARK(BM_RcpConvergence)->Arg(2)->Arg(4)->Arg(8);

// Cost of one counter report (a relaxed fetch_add on a padded thread-local
// slot when OBS is on; nothing when compiled out). Baseline for judging the
// instrumentation density of hot paths.
void BM_ObsCounterAdd(benchmark::State& state) {
  for (auto _ : state) {
    OBS_COUNTER_INC("bench.counter_add");
  }
}
BENCHMARK(BM_ObsCounterAdd);

// Cost of a full span (two steady-clock reads + histogram record, no sink).
void BM_ObsSpan(benchmark::State& state) {
  for (auto _ : state) {
    OBS_SPAN("bench.span");
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_ObsSpan);

}  // namespace
}  // namespace closfair

BENCHMARK_MAIN();
