// E14 (extension) — the cost of unsplittability, quantified.
//
// §1 frames the paper: with splittable flows a Clos network *is* its
// macro-switch (demand satisfaction); unsplittability is what breaks the
// abstraction. This bench measures the full lattice on one family:
//
//   splittable max-min (= macro rates, fractional-routing witness by LP)
//     >=lex  lex-max-min (best unsplittable)   >=lex  greedy  >=lex  ecmp
//
// and reports each level's worst per-flow ratio to macro on the Theorem 4.3
// starvation family.
#include <iostream>

#include "core/adversarial.hpp"
#include "fairness/waterfill.hpp"
#include "lp/splittable.hpp"
#include "routing/ecmp.hpp"
#include "routing/greedy.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace closfair;

namespace {

double min_ratio(const Allocation<Rational>& alloc, const std::vector<Rational>& macro) {
  double worst = 1.0;
  for (FlowIndex f = 0; f < alloc.size(); ++f) {
    if (macro[f].is_zero()) continue;
    worst = std::min(worst, (alloc.rate(f) / macro[f]).to_double());
  }
  return worst;
}

}  // namespace

int main() {
  std::cout << "=== E14: splittable vs unsplittable on the starvation family ===\n\n";

  TextTable table({"n", "splittable min-ratio", "flows that split", "lex witness",
                   "greedy", "ecmp (1 seed)"});
  for (int n : {3, 4, 5}) {
    const AdversarialInstance inst = theorem_4_3_instance(n);
    const ClosNetwork net = ClosNetwork::paper(n);
    const MacroSwitch ms = MacroSwitch::paper(n);
    const FlowSet flows = instantiate(net, inst.flows);

    const auto splittable = splittable_max_min(net, ms, inst.flows);
    int split_count = 0;
    for (const auto& shares : splittable.shares) {
      int used = 0;
      for (const Rational& s : shares) {
        if (!s.is_zero()) ++used;
      }
      if (used >= 2) ++split_count;
    }

    const auto lex = max_min_fair<Rational>(net, flows, *inst.witness);
    std::vector<double> demands;
    for (const Rational& r : inst.macro_rates) demands.push_back(r.to_double());
    const auto greedy = max_min_fair<Rational>(net, flows, greedy_routing(net, flows, demands));
    Rng rng(static_cast<std::uint64_t>(n));
    const auto ecmp = max_min_fair<Rational>(net, flows, ecmp_routing(net, flows, rng));

    table.add_row({std::to_string(n),
                   fmt_double(min_ratio(splittable.rates, inst.macro_rates), 3),
                   std::to_string(split_count) + "/" + std::to_string(flows.size()),
                   fmt_double(min_ratio(lex, inst.macro_rates), 3),
                   fmt_double(min_ratio(greedy, inst.macro_rates), 3),
                   fmt_double(min_ratio(ecmp, inst.macro_rates), 3)});
  }
  std::cout << table << '\n';

  std::cout << "reading: splitting restores the macro abstraction exactly (ratio 1.0,\n"
               "witnessed by an exact fractional-routing LP); the moment flows must\n"
               "pick single paths, something gives — the lex objective gives 1/n on\n"
               "one flow, heuristics spread the damage. Unsplittability, not routing\n"
               "quality, is the paper's culprit.\n";
  return 0;
}
