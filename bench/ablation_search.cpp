// A2 (ablation) — search machinery design choices.
//
// Measures the pruning techniques that make the exhaustive tools usable:
//   * replication search: canonical middle symmetry breaking on/off
//     (nodes explored to prove Theorem 4.2 infeasibility);
//   * exhaustive lex-max-min: pin-first-flow symmetry on/off and
//     stop-at-macro-vector early exit on/off (routings evaluated);
//   * exhaustive lex-max-min: canonical (restricted-growth-string) vs
//     odometer enumeration (water-fill invocations).
#include <chrono>
#include <thread>
#include <iostream>

#include "core/adversarial.hpp"
#include "fairness/waterfill.hpp"
#include "routing/exhaustive.hpp"
#include "routing/replication.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "workload/stochastic.hpp"

using namespace closfair;

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

}  // namespace

int main() {
  std::cout << "=== A2: search ablations ===\n\n";

  std::cout << "replication search on the Theorem 4.2 instance (infeasible -> the\n"
               "search must exhaust the space):\n";
  TextTable rep({"n", "symmetry", "nodes", "seconds"});
  for (int n : {3, 4}) {
    const AdversarialInstance inst = theorem_4_2_instance(n);
    const ClosNetwork net = ClosNetwork::paper(n);
    const FlowSet flows = instantiate(net, inst.flows);
    for (bool sym : {true, false}) {
      ReplicationOptions options;
      options.break_symmetry = sym;
      options.max_nodes = 50'000'000;  // keep the ablation bounded
      const auto start = std::chrono::steady_clock::now();
      try {
        const auto result = find_feasible_routing(net, flows, inst.macro_rates, options);
        rep.add_row({std::to_string(n), sym ? "on" : "off",
                     std::to_string(result.nodes_explored),
                     fmt_double(seconds_since(start), 3)});
      } catch (const ContractViolation&) {
        rep.add_row({std::to_string(n), sym ? "on" : "off", "> 50M (budget exhausted)",
                     fmt_double(seconds_since(start), 3)});
      }
    }
  }
  std::cout << rep << '\n';

  std::cout << "exhaustive lex-max-min on a replicable permutation workload (C_2,\n"
               "8 flows; the macro vector is reachable, so early exit can trigger):\n";
  TextTable lex({"pin first flow", "stop at macro", "routings evaluated"});
  {
    const ClosNetwork net = ClosNetwork::paper(2);
    const MacroSwitch ms = MacroSwitch::paper(2);
    Rng rng(5);
    const FlowCollection specs = random_permutation(Fabric{4, 2}, rng);
    const FlowSet flows = instantiate(net, specs);
    const auto macro = max_min_fair<Rational>(ms, instantiate(ms, specs));
    for (bool pin : {true, false}) {
      for (bool stop : {true, false}) {
        ExhaustiveOptions options;
        options.fix_first_flow = pin;
        if (stop) options.stop_at_sorted = macro.sorted();
        const auto result = lex_max_min_exhaustive(net, flows, options);
        lex.add_row({pin ? "on" : "off", stop ? "on" : "off",
                     std::to_string(result.routings_evaluated)});
      }
    }
  }
  std::cout << lex << '\n';

  std::cout << "canonical (symmetry-reduced) vs odometer enumeration of exhaustive\n"
               "lex-max-min (C_4, 8 random flows; middles are capacity-symmetric, so\n"
               "only restricted-growth-string representatives need water-filling):\n";
  {
    const ClosNetwork net = ClosNetwork::paper(4);
    Rng rng(101);
    const FlowSet flows = instantiate(
        net, uniform_random(Fabric{net.num_tors(), net.servers_per_tor()}, 8, rng));
    TextTable table({"enumeration", "waterfills", "routings covered", "seconds"});
    struct Mode {
      const char* name;
      bool canonical;
      bool pin;
    };
    for (const Mode& mode : {Mode{"odometer (full)", false, false},
                             Mode{"odometer (pinned)", false, true},
                             Mode{"canonical", true, true}}) {
      ExhaustiveOptions options;
      options.exploit_middle_symmetry = mode.canonical;
      options.fix_first_flow = mode.pin;
      const auto start = std::chrono::steady_clock::now();
      const auto result = lex_max_min_exhaustive(net, flows, options);
      table.add_row({mode.name, std::to_string(result.waterfill_invocations),
                     std::to_string(result.routings_evaluated),
                     fmt_double(seconds_since(start), 3)});
    }
    std::cout << table << '\n';
  }

  std::cout << "thread scaling of exhaustive lex-max-min (C_4, 9 random flows,\n"
               "covering the pinned 4^8 = 65536-routing space via canonical\n"
               "prefixes, no early exit; speedup is bounded by the host's core\n"
               "count — this machine reports "
            << std::thread::hardware_concurrency() << "):\n";
  {
    const ClosNetwork net = ClosNetwork::paper(4);
    Rng rng(2024);
    const FlowSet flows = instantiate(
        net, uniform_random(Fabric{net.num_tors(), net.servers_per_tor()}, 9, rng));
    TextTable table({"threads", "seconds", "routings", "sorted vector matches serial"});
    std::vector<Rational> serial_sorted;
    for (unsigned threads : {1u, 2u, 4u}) {
      ExhaustiveOptions options;
      options.num_threads = threads;
      const auto start = std::chrono::steady_clock::now();
      const auto result = lex_max_min_exhaustive(net, flows, options);
      const double secs = seconds_since(start);
      if (threads == 1) serial_sorted = result.alloc.sorted();
      table.add_row({std::to_string(threads), fmt_double(secs, 3),
                     std::to_string(result.routings_evaluated),
                     result.alloc.sorted() == serial_sorted ? "yes" : "NO"});
    }
    std::cout << table << '\n';
  }

  std::cout << "reading: symmetry breaking shrinks the infeasibility proof by orders\n"
               "of magnitude (it is what makes the n=4 proof tractable), the\n"
               "macro-vector early exit turns replicable instances from exponential\n"
               "to near-instant, canonical enumeration cuts the water-fill count by\n"
               "another order of magnitude on symmetric fabrics, and the exhaustive\n"
               "search parallelizes deterministically over canonical prefixes.\n";
  return 0;
}
