// A1 (ablation) — Doom-Switch design choices.
//
// Algorithm 1 makes two decisions: (a) route a *maximum* matching
// link-disjointly, (b) dump everyone else on the *least-loaded* color. This
// ablation swaps each for plausible alternatives and measures the max-min
// throughput on the Theorem 5.4 family and on random workloads:
//
//   doom          — Algorithm 1 as published
//   doom-max      — dump on the MOST-loaded color instead
//   doom-spread   — spread unmatched flows round-robin over all middles
//   ecmp          — no structure at all (baseline)
#include <algorithm>
#include <iostream>

#include "core/adversarial.hpp"
#include "fairness/waterfill.hpp"
#include "routing/doom_switch.hpp"
#include "routing/ecmp.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "workload/stochastic.hpp"

using namespace closfair;

namespace {

// Variants share steps 1-2 via doom_switch() and re-place the unmatched
// flows per policy.
enum class DumpPolicy { kDoomed, kMostLoaded, kSpread };

MiddleAssignment variant(const ClosNetwork& net, const FlowSet& flows, DumpPolicy policy) {
  const DoomSwitchResult doom = doom_switch(net, flows);
  if (policy == DumpPolicy::kDoomed) return doom.middles;

  std::vector<bool> matched(flows.size(), false);
  for (FlowIndex f : doom.matched) matched[f] = true;

  std::vector<std::size_t> per_middle(static_cast<std::size_t>(net.num_middles()) + 1, 0);
  for (FlowIndex f : doom.matched) ++per_middle[static_cast<std::size_t>(doom.middles[f])];

  MiddleAssignment result = doom.middles;
  if (policy == DumpPolicy::kMostLoaded) {
    int most = 1;
    for (int m = 2; m <= net.num_middles(); ++m) {
      if (per_middle[static_cast<std::size_t>(m)] >
          per_middle[static_cast<std::size_t>(most)]) {
        most = m;
      }
    }
    for (FlowIndex f = 0; f < flows.size(); ++f) {
      if (!matched[f]) result[f] = most;
    }
  } else {
    int next = 1;
    for (FlowIndex f = 0; f < flows.size(); ++f) {
      if (!matched[f]) {
        result[f] = next;
        next = next % net.num_middles() + 1;
      }
    }
  }
  return result;
}

}  // namespace

int main() {
  std::cout << "=== A1: Doom-Switch ablation — where should doomed flows go? ===\n\n";

  std::cout << "Theorem 5.4 family (k = 4):\n";
  TextTable table({"n", "T^MmF(MS)", "doom", "doom-max", "doom-spread", "ecmp"});
  for (int n : {5, 7, 9, 11}) {
    const AdversarialInstance inst = theorem_5_4_instance(n, 4);
    const ClosNetwork net = ClosNetwork::paper(n);
    const MacroSwitch ms = MacroSwitch::paper(n);
    const FlowSet flows = instantiate(net, inst.flows);
    const auto macro = max_min_fair<Rational>(ms, instantiate(ms, inst.flows));

    auto throughput_of = [&](const MiddleAssignment& middles) {
      return max_min_fair<Rational>(net, flows, middles).throughput();
    };
    Rng rng(static_cast<std::uint64_t>(n) * 3 + 7);
    table.add_row({std::to_string(n), macro.throughput().to_string(),
                   throughput_of(variant(net, flows, DumpPolicy::kDoomed)).to_string(),
                   throughput_of(variant(net, flows, DumpPolicy::kMostLoaded)).to_string(),
                   throughput_of(variant(net, flows, DumpPolicy::kSpread)).to_string(),
                   throughput_of(ecmp_routing(net, flows, rng)).to_string()});
  }
  std::cout << table << '\n';

  std::cout << "random uniform workloads (C_4, 80 flows, mean over 5 seeds):\n";
  TextTable random_table({"policy", "mean throughput", "mean min-rate"});
  {
    const int n = 4;
    const ClosNetwork net = ClosNetwork::paper(n);
    struct Acc {
      double tput = 0.0;
      double min_rate = 0.0;
    };
    Acc accs[4];
    const char* names[4] = {"doom", "doom-max", "doom-spread", "ecmp"};
    for (int seed = 0; seed < 5; ++seed) {
      Rng rng(static_cast<std::uint64_t>(seed) * 97 + 13);
      const FlowSet flows =
          instantiate(net, uniform_random(Fabric{2 * n, n}, 80, rng));
      const MiddleAssignment assignments[4] = {
          variant(net, flows, DumpPolicy::kDoomed),
          variant(net, flows, DumpPolicy::kMostLoaded),
          variant(net, flows, DumpPolicy::kSpread),
          ecmp_routing(net, flows, rng),
      };
      for (int i = 0; i < 4; ++i) {
        const auto alloc = max_min_fair<Rational>(net, flows, assignments[i]);
        accs[i].tput += alloc.throughput().to_double();
        accs[i].min_rate += alloc.sorted().front().to_double();
      }
    }
    for (int i = 0; i < 4; ++i) {
      random_table.add_row({names[i], fmt_double(accs[i].tput / 5, 3),
                            fmt_double(accs[i].min_rate / 5, 4)});
    }
  }
  std::cout << random_table << '\n';

  std::cout << "reading: concentrating the doomed flows (Algorithm 1's choice) is what\n"
               "buys throughput on the adversarial family — spreading them back over\n"
               "middles re-couples them with matched flows and erases the gain. On\n"
               "benign workloads the variants converge, which is why the pathology\n"
               "matters: a throughput-optimizing operator sees no cost until an\n"
               "adversarial (or unlucky) pattern arrives.\n";
  return 0;
}
