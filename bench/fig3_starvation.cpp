// E4 — Theorem 4.3 / Lemmas 4.4-4.6: lex-max-min fairness starves the type 3
// flow by a 1/n factor.
//
// For each n: the measured macro-switch rates (Lemma 4.4), the measured
// max-min rates under the paper's witness routing (Lemma 4.6), the
// bottleneck-property certificate, and the starvation factor next to the
// predicted 1/n.
#include <iostream>

#include "core/adversarial.hpp"
#include "core/theorems.hpp"
#include "fairness/bottleneck.hpp"
#include "fairness/waterfill.hpp"
#include "routing/local_search.hpp"
#include "util/table.hpp"

using namespace closfair;

int main() {
  std::cout << "=== E4: Theorem 4.3 — lex-max-min starvation factor 1/n ===\n\n";

  TextTable table({"n", "flows", "type3 macro (paper: 1)", "type3 lex (paper: 1/n)",
                   "starvation (meas)", "1/n", "bottleneck cert"});
  for (int n : {3, 4, 5, 6, 7, 8}) {
    const AdversarialInstance inst = theorem_4_3_instance(n);
    const ClosNetwork net = ClosNetwork::paper(n);
    const MacroSwitch ms = MacroSwitch::paper(n);

    const auto macro = max_min_fair<Rational>(ms, instantiate(ms, inst.flows));
    const FlowSet flows = instantiate(net, inst.flows);
    const auto clos = max_min_fair<Rational>(net, flows, *inst.witness);
    const Routing routing = expand_routing(net, flows, *inst.witness);
    const bool cert = is_max_min_fair(net.topology(), routing, clos);

    const FlowIndex type3 = flows.size() - 1;
    const Rational factor = clos.rate(type3) / macro.rate(type3);
    const Theorem43Prediction pred = predict_theorem_4_3(n);

    table.add_row({std::to_string(n), std::to_string(flows.size()),
                   macro.rate(type3).to_string(), clos.rate(type3).to_string(),
                   factor.to_string(), pred.starvation_factor.to_string(),
                   cert ? "ok" : "FAILED"});
  }
  std::cout << table << '\n';

  // Local-optimality probe: hill climbing cannot improve the witness routing
  // (step 2 of Lemma 4.6 proves global optimality; this is the searchable
  // shadow of that claim).
  std::cout << "hill-climb probe from the witness routing (no move may improve):\n";
  TextTable probe({"n", "accepted moves (paper: 0)", "vector unchanged"});
  for (int n : {3, 4, 5}) {
    const AdversarialInstance inst = theorem_4_3_instance(n);
    const ClosNetwork net = ClosNetwork::paper(n);
    const FlowSet flows = instantiate(net, inst.flows);
    const auto base = max_min_fair<Rational>(net, flows, *inst.witness);
    const auto climbed = lex_max_min_local_search(net, flows, *inst.witness);
    probe.add_row({std::to_string(n), std::to_string(climbed.moves),
                   climbed.alloc.sorted() == base.sorted() ? "yes" : "NO"});
  }
  std::cout << probe << '\n';

  std::cout << "paper shape: the fairest routing objective (lex-max-min) cuts the\n"
               "type 3 flow's rate to 1/n of its macro-switch share — starvation\n"
               "grows unboundedly with network size.\n";
  return 0;
}
