// E16 (extension) — the emergence tower: packets -> rate control -> max-min.
//
// The paper assumes congestion control imposes max-min fair rates at each
// routing. This bench stacks the library's three independent layers of that
// assumption on the same instances and shows them agree:
//
//   waterfill      the allocation itself (exact, combinatorial)
//   rate_control   per-link advertised shares, iterated (converges)
//   packet_sim     per-link fair queueing + window flow control (emerges)
#include <iostream>

#include "core/adversarial.hpp"
#include "fairness/waterfill.hpp"
#include "routing/ecmp.hpp"
#include "sim/packet_sim.hpp"
#include "sim/rate_control.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "workload/stochastic.hpp"

using namespace closfair;

int main() {
  std::cout << "=== E16: congestion control emerges max-min fairness ===\n\n";

  std::cout << "Example 2.3 in MS_2, per-flow rates by layer:\n";
  {
    const MacroSwitch ms = MacroSwitch::paper(2);
    const FlowSet flows = instantiate(
        ms, {FlowSpec{1, 2, 1, 2}, FlowSpec{1, 2, 2, 1}, FlowSpec{1, 2, 2, 2},
             FlowSpec{2, 1, 2, 1}, FlowSpec{2, 2, 2, 2}, FlowSpec{1, 1, 1, 1}});
    const Routing routing = macro_routing(ms, flows);
    const auto exact = max_min_fair<Rational>(ms.topology(), flows, routing);
    const auto rcp = rcp_rate_control(ms.topology(), flows, routing);
    const auto packets = packet_fair_queueing(ms.topology(), flows, routing);

    TextTable table({"flow", "waterfill (exact)", "rate control", "packet FQ"});
    const char* names[] = {"type1 a", "type1 b", "type1 c", "type2 a", "type2 b", "type3"};
    for (FlowIndex f = 0; f < flows.size(); ++f) {
      table.add_row({names[f], exact.rate(f).to_string(),
                     fmt_double(rcp.rates.rate(f), 4),
                     fmt_double(packets.rates.rate(f), 4)});
    }
    std::cout << table << '\n';
    std::cout << "rate control converged in " << rcp.iterations << " rounds; packet sim "
              << "processed " << packets.events << " service events.\n\n";
  }

  std::cout << "agreement across random Clos routings (C_2, 5 instances):\n";
  {
    const ClosNetwork net = ClosNetwork::paper(2);
    TextTable table({"instance", "flows", "max |rcp - exact|", "max |packets - exact|"});
    for (int seed = 0; seed < 5; ++seed) {
      Rng rng(static_cast<std::uint64_t>(seed) * 67 + 11);
      const FlowSet flows = instantiate(
          net, uniform_random(Fabric{net.num_tors(), net.servers_per_tor()},
                              6 + rng.next_below(8), rng));
      const Routing routing = expand_routing(net, flows, ecmp_routing(net, flows, rng));
      const auto exact = max_min_fair<double>(net.topology(), flows, routing);
      const auto rcp = rcp_rate_control(net.topology(), flows, routing);
      const auto packets = packet_fair_queueing(net.topology(), flows, routing);
      double rcp_err = 0.0;
      double pkt_err = 0.0;
      for (FlowIndex f = 0; f < flows.size(); ++f) {
        rcp_err = std::max(rcp_err, std::abs(rcp.rates.rate(f) - exact.rate(f)));
        pkt_err = std::max(pkt_err, std::abs(packets.rates.rate(f) - exact.rate(f)));
      }
      table.add_row({std::to_string(seed), std::to_string(flows.size()),
                     fmt_double(rcp_err, 6), fmt_double(pkt_err, 4)});
    }
    std::cout << table << '\n';
  }

  std::cout << "reading: the paper's premise holds mechanically — explicit rate\n"
               "control reproduces the water-fill allocation to numerical precision,\n"
               "and dumb per-link fair queueing with windows lands within packet\n"
               "quantization of it. The impossibility results are therefore about\n"
               "*routing*, not about congestion control misbehaving.\n";
  return 0;
}
