// E5 — Theorem 5.4 / Example 5.3 / Figure 4: routing for throughput doubles
// the macro-switch max-min throughput via the Doom-Switch algorithm.
//
// Sweeps (n, k) over the stacked-gadget family: measured Doom-Switch
// throughput and gain against the closed forms, with the gain approaching
// 2(1 - 1/(n-1)) and the type 2 rates collapsing toward zero.
#include <iostream>

#include "core/adversarial.hpp"
#include "core/analysis.hpp"
#include "core/theorems.hpp"
#include "fairness/waterfill.hpp"
#include "routing/doom_switch.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "workload/stochastic.hpp"

using namespace closfair;

int main() {
  std::cout << "=== E5: Theorem 5.4 — Doom-Switch throughput gain -> 2 ===\n\n";

  std::cout << "Example 5.3 exactly (n = 7, k = 1):\n";
  {
    const ClosNetwork net = ClosNetwork::paper(7);
    const MacroSwitch ms = MacroSwitch::paper(7);
    const AdversarialInstance inst = theorem_5_4_instance(7, 1);
    const FlowSet flows = instantiate(net, inst.flows);
    const auto macro = max_min_fair<Rational>(ms, instantiate(ms, inst.flows));
    const auto doom = doom_switch(net, flows);
    const auto alloc = max_min_fair<Rational>(net, flows, doom.middles);
    TextTable table({"quantity", "measured", "paper"});
    table.add_row({"T^MmF in MS_7", macro.throughput().to_string(), "9/2"});
    table.add_row({"Doom-Switch throughput", alloc.throughput().to_string(), "5"});
    table.add_row({"type 1 rates", alloc.rate(0).to_string(), "2/3"});
    table.add_row({"type 2 rates", alloc.rate(flows.size() - 1).to_string(), "1/3"});
    std::cout << table << '\n';
  }

  std::cout << "sweep: measured gain vs the paper's 2(1 - eps) lower bound\n"
               "(at n = 3 the bound is vacuous — a single gadget cannot be crushed,\n"
               " so Doom-Switch ties the macro throughput there):\n";
  TextTable sweep({"n", "k", "T^MmF(MS)", "T doom (meas)", "n-2 (paper lb)", "gain (meas)",
                   "2(1-eps) lb", "type2 rate"});
  for (int n : {3, 5, 7, 9, 11, 15}) {
    for (int k : {1, 8, 64}) {
      const ClosNetwork net = ClosNetwork::paper(n);
      const MacroSwitch ms = MacroSwitch::paper(n);
      const AdversarialInstance inst = theorem_5_4_instance(n, k);
      const FlowSet flows = instantiate(net, inst.flows);
      const auto macro = max_min_fair<Rational>(ms, instantiate(ms, inst.flows));
      const auto doom = doom_switch(net, flows);
      const auto alloc = max_min_fair<Rational>(net, flows, doom.middles);
      const Theorem54Prediction pred = predict_theorem_5_4(n, k);
      const Rational gain = alloc.throughput() / macro.throughput();
      sweep.add_row({std::to_string(n), std::to_string(k), macro.throughput().to_string(),
                     alloc.throughput().to_string(), pred.t_doom_lower_bound.to_string(),
                     fmt_double(gain.to_double(), 4), fmt_double(pred.gain.to_double(), 4),
                     alloc.rate(flows.size() - 1).to_string()});
    }
  }
  std::cout << sweep << '\n';

  std::cout << "upper-bound check: t(a_r^MmF) <= 2 T^MmF for the Doom routing on\n"
               "random workloads (C_4, 10 seeds): ";
  {
    bool all_ok = true;
    const int n = 4;
    const ClosNetwork net = ClosNetwork::paper(n);
    const MacroSwitch ms = MacroSwitch::paper(n);
    for (int seed = 0; seed < 10; ++seed) {
      Rng rng(static_cast<std::uint64_t>(seed) + 99);
      const FlowCollection specs = uniform_random(Fabric{2 * n, n}, 50, rng);
      const auto macro = max_min_fair<Rational>(ms, instantiate(ms, specs));
      const FlowSet flows = instantiate(net, specs);
      const auto doom = doom_switch(net, flows);
      const auto alloc = max_min_fair<Rational>(net, flows, doom.middles);
      if (alloc.throughput() > Rational{2} * macro.throughput()) all_ok = false;
    }
    std::cout << (all_ok ? "holds\n" : "VIOLATED\n");
  }

  std::cout << "\npaper shape: gain rises with n and k toward 2, purchased by crushing\n"
               "the type 2 flows' rates toward zero (2/(k(n-1))).\n";
  return 0;
}
