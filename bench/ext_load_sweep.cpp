// E13 (extension) — dynamic load sweep: flow completion times vs offered
// load on C_n under ECMP / least-loaded routing, against the macro-switch
// ideal.
//
// The classic data-center-paper figure (mean/p99 FCT vs load) rendered over
// this library's flow-level simulator, quantifying in FCT terms how much of
// the macro abstraction routing policies preserve at each utilization.
#include <iostream>

#include "sim/event_sim.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "workload/trace.hpp"

using namespace closfair;

int main() {
  const int n = 2;
  const ClosNetwork net = ClosNetwork::paper(n);
  const MacroSwitch ms = MacroSwitch::paper(n);
  const int servers = 2 * n * n;

  std::cout << "=== E13: FCT vs offered load (C_" << n << ", " << servers
            << " servers, exp(1) sizes, 400 flows, 3 seeds) ===\n\n";

  TextTable table({"load", "ecmp mean", "ecmp p99", "least-loaded mean", "ll p99",
                   "macro mean", "macro p99", "ecmp/macro"});
  for (double load : {0.2, 0.4, 0.6, 0.8}) {
    double ecmp_mean = 0.0;
    double ecmp_p99 = 0.0;
    double ll_mean = 0.0;
    double ll_p99 = 0.0;
    double macro_mean = 0.0;
    double macro_p99 = 0.0;
    const int seeds = 3;
    for (int seed = 0; seed < seeds; ++seed) {
      TraceParams params;
      params.fabric = Fabric{2 * n, n};
      params.num_flows = 400;
      params.mean_size = 1.0;
      // Offered load per server link = arrival_rate * mean_size / servers.
      params.arrival_rate = load * servers;
      Rng rng(static_cast<std::uint64_t>(seed) * 17 + 3);
      const Trace trace = poisson_trace(params, rng);

      Rng r1(static_cast<std::uint64_t>(seed) * 31 + 1);
      const SimStats ecmp = simulate_clos(net, trace, SimPolicy::kEcmp, r1);
      Rng r2(static_cast<std::uint64_t>(seed) * 31 + 2);
      const SimStats ll = simulate_clos(net, trace, SimPolicy::kLeastLoaded, r2);
      const SimStats macro = simulate_macro(ms, trace);
      ecmp_mean += ecmp.mean_fct;
      ecmp_p99 += ecmp.p99_fct;
      ll_mean += ll.mean_fct;
      ll_p99 += ll.p99_fct;
      macro_mean += macro.mean_fct;
      macro_p99 += macro.p99_fct;
    }
    table.add_row({fmt_double(load, 1), fmt_double(ecmp_mean / seeds, 3),
                   fmt_double(ecmp_p99 / seeds, 3), fmt_double(ll_mean / seeds, 3),
                   fmt_double(ll_p99 / seeds, 3), fmt_double(macro_mean / seeds, 3),
                   fmt_double(macro_p99 / seeds, 3),
                   fmt_double(ecmp_mean / macro_mean, 3)});
  }
  std::cout << table << '\n';

  std::cout << "reading: at low load all routings track the macro-switch (collisions\n"
               "are rare); the gap opens with utilization, ECMP degrading before\n"
               "least-loaded — the dynamic face of the rate-allocation gaps the\n"
               "static benches measure.\n";
  return 0;
}
