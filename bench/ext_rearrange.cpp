// E10 (extension) — multirate rearrangeability probe (§6, related work).
//
// For random feasible macro-switch allocations over a fabric with n servers
// per ToR: how many middle switches does a first-fit routing need, versus
// the exact minimum, the volume lower bound, and the conjectured 2n-1?
#include <iostream>

#include "fairness/waterfill.hpp"
#include "net/macroswitch.hpp"
#include "routing/rearrange.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "workload/stochastic.hpp"

using namespace closfair;

int main() {
  std::cout << "=== E10: multirate rearrangeability — middles needed to route\n"
               "    macro-switch max-min allocations (conjecture: 2n-1 always works) ===\n\n";

  TextTable table({"servers/ToR n", "workload", "volume lb (max)", "exact min (max)",
                   "first-fit (max)", "2n-1", "ff > exact (count)"});
  const int tors = 4;
  for (int servers : {2, 3, 4}) {
    const ClosNetwork net(
        ClosNetwork::Params{3 * servers, tors, servers, Rational{1}});
    const MacroSwitch ms(MacroSwitch::Params{tors, servers, Rational{1}});
    const Fabric fabric{tors, servers};

    struct Wl {
      const char* name;
      int kind;
    };
    for (const Wl& wl : {Wl{"uniform", 0}, Wl{"permutation", 1}, Wl{"incast", 2}}) {
      int worst_lb = 0;
      int worst_exact = 0;
      int worst_ff = 0;
      int ff_suboptimal = 0;
      for (int seed = 0; seed < 8; ++seed) {
        Rng rng(static_cast<std::uint64_t>(seed) * 211 + servers * 17 + wl.kind);
        FlowCollection specs;
        switch (wl.kind) {
          case 0: specs = uniform_random(fabric, static_cast<std::size_t>(4 * servers), rng); break;
          case 1: specs = random_permutation(fabric, rng); break;
          default: specs = incast(fabric, static_cast<std::size_t>(3 * servers), 1, 1, rng); break;
        }
        const auto macro = max_min_fair<Rational>(ms, instantiate(ms, specs));
        const FlowSet flows = instantiate(net, specs);

        const int lb = middle_count_lower_bound(net, flows, macro.rates());
        const auto exact = min_middles_exact(net, flows, macro.rates());
        const auto ff = first_fit_rearrange(net, flows, macro.rates());
        worst_lb = std::max(worst_lb, lb);
        if (exact) worst_exact = std::max(worst_exact, *exact);
        worst_ff = std::max(worst_ff, ff.middles_used);
        if (exact && ff.middles_used > *exact) ++ff_suboptimal;
      }
      table.add_row({std::to_string(servers), wl.name, std::to_string(worst_lb),
                     std::to_string(worst_exact), std::to_string(worst_ff),
                     std::to_string(2 * servers - 1), std::to_string(ff_suboptimal)});
    }
  }
  std::cout << table << '\n';

  std::cout << "reading: max-min macro allocations are benign — the exact minimum\n"
               "hugs the volume lower bound, and first-fit stays within the 2n-1\n"
               "conjecture's budget (the conjecture's hard instances are crafted\n"
               "fractional allocations, not max-min outputs).\n";
  return 0;
}
