// E15 (extension) — selfish routing and LP rounding as routing policies.
//
// Two more points on the policy spectrum the paper's related work spans:
//   * best-response dynamics of the progressive-filling routing game
//     (citation [17]): flows selfishly chase their own max-min rate;
//   * randomized rounding of the splittable LP optimum: the classic
//     approximation-algorithms route to unsplittable routings.
// Scored like E6 (vs the macro-switch) on stochastic and adversarial input.
#include <iostream>

#include "core/adversarial.hpp"
#include "fairness/waterfill.hpp"
#include "lp/splittable.hpp"
#include "routing/ecmp.hpp"
#include "routing/games.hpp"
#include "routing/greedy.hpp"
#include "routing/lp_rounding.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "workload/stochastic.hpp"

using namespace closfair;

namespace {

struct Scores {
  double min_ratio = 1.0;
  double tput_ratio = 0.0;
};

Scores score(const Allocation<Rational>& alloc, const Allocation<Rational>& macro) {
  Scores s;
  for (FlowIndex f = 0; f < alloc.size(); ++f) {
    if (macro.rate(f).is_zero()) continue;
    s.min_ratio = std::min(s.min_ratio, (alloc.rate(f) / macro.rate(f)).to_double());
  }
  s.tput_ratio = macro.throughput().is_zero()
                     ? 1.0
                     : (alloc.throughput() / macro.throughput()).to_double();
  return s;
}

}  // namespace

int main() {
  std::cout << "=== E15: selfish routing and LP rounding vs the macro-switch ===\n\n";

  std::cout << "stochastic input (C_3, uniform-36, 5 seeds; means):\n";
  {
    const int n = 3;
    const ClosNetwork net = ClosNetwork::paper(n);
    const MacroSwitch ms = MacroSwitch::paper(n);
    double nash_min = 0.0;
    double nash_tput = 0.0;
    double round_min = 0.0;
    double round_tput = 0.0;
    double ecmp_min = 0.0;
    double ecmp_tput = 0.0;
    int nash_reached = 0;
    const int seeds = 5;
    for (int seed = 0; seed < seeds; ++seed) {
      Rng rng(static_cast<std::uint64_t>(seed) * 89 + 31);
      const FlowCollection specs = uniform_random(Fabric{2 * n, n}, 36, rng);
      const FlowSet flows = instantiate(net, specs);
      const auto macro = max_min_fair<Rational>(ms, instantiate(ms, specs));

      const auto nash =
          best_response_dynamics(net, flows, ecmp_routing(net, flows, rng));
      if (nash.reached_nash) ++nash_reached;
      const Scores ns = score(nash.alloc, macro);
      nash_min += ns.min_ratio;
      nash_tput += ns.tput_ratio;

      const auto splittable = splittable_max_min(net, ms, specs);
      const auto rounded = round_splittable_best_of(net, flows, splittable, rng, 8);
      const Scores rs = score(rounded.alloc, macro);
      round_min += rs.min_ratio;
      round_tput += rs.tput_ratio;

      const auto ecmp = max_min_fair<Rational>(net, flows, ecmp_routing(net, flows, rng));
      const Scores es = score(ecmp, macro);
      ecmp_min += es.min_ratio;
      ecmp_tput += es.tput_ratio;
    }
    TextTable table({"policy", "mean min-ratio", "mean tput-ratio", "notes"});
    table.add_row({"best-response (Nash)", fmt_double(nash_min / seeds, 3),
                   fmt_double(nash_tput / seeds, 3),
                   std::to_string(nash_reached) + "/" + std::to_string(seeds) +
                       " reached Nash"});
    table.add_row({"LP rounding (best of 8)", fmt_double(round_min / seeds, 3),
                   fmt_double(round_tput / seeds, 3), "from splittable optimum"});
    table.add_row({"ecmp", fmt_double(ecmp_min / seeds, 3),
                   fmt_double(ecmp_tput / seeds, 3), "baseline"});
    std::cout << table << '\n';
  }

  std::cout << "adversarial input (Theorem 4.3 family):\n";
  {
    TextTable table({"n", "nash type3 rate", "1/n", "rounding type3 (best of 8)",
                     "rounding min-ratio"});
    for (int n : {3, 4}) {
      const AdversarialInstance inst = theorem_4_3_instance(n);
      const ClosNetwork net = ClosNetwork::paper(n);
      const MacroSwitch ms = MacroSwitch::paper(n);
      const FlowSet flows = instantiate(net, inst.flows);
      const FlowIndex type3 = flows.size() - 1;

      const auto nash = best_response_dynamics(net, flows, *inst.witness,
                                               BestResponseOptions{30});
      Rng rng(static_cast<std::uint64_t>(n) * 7 + 1);
      const auto splittable = splittable_max_min(net, ms, inst.flows);
      const auto rounded = round_splittable_best_of(net, flows, splittable, rng, 8);

      const auto macro = max_min_fair<Rational>(ms, instantiate(ms, inst.flows));
      const Scores rs = score(rounded.alloc, macro);
      table.add_row({std::to_string(n), nash.alloc.rate(type3).to_string(),
                     Rational(1, n).to_string(), rounded.alloc.rate(type3).to_string(),
                     fmt_double(rs.min_ratio, 3)});
    }
    std::cout << table << '\n';
  }

  std::cout << "reading: selfishness cannot rescue the starved flow — at the Nash\n"
               "equilibrium it is indifferent across middles, every choice yielding\n"
               "1/n. LP rounding *can* rescue the type 3 flow specifically (its split\n"
               "routing often leaves some middle uncongested), but Theorem 4.2 still\n"
               "collects: the rounding's min-ratio column shows another flow paying\n"
               "instead — no unsplittable routing replicates all macro rates. On\n"
               "stochastic input both are respectable policies above ECMP.\n";
  return 0;
}
