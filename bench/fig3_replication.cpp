// E3 — Theorem 4.2 / Example 4.1 / Figure 3: macro-switch max-min rates that
// no Clos routing can replicate.
//
// For each n, the backtracking searcher exhausts the routing space of the
// adversarial collection and proves infeasibility; dropping the type 3 flow
// restores feasibility (with a witness routing), exactly as the paper's
// argument pivots on the type 3 flow.
#include <iostream>

#include "core/adversarial.hpp"
#include "fairness/waterfill.hpp"
#include "routing/replication.hpp"
#include "util/table.hpp"

using namespace closfair;

int main() {
  std::cout << "=== E3: Theorem 4.2 — macro rates unreachable by any routing ===\n\n";

  TextTable table({"n", "flows", "macro rates (type1/2/3)", "replicable (paper: no)",
                   "search nodes", "w/o type3 (paper: yes)"});
  for (int n : {3, 4}) {
    const AdversarialInstance inst = theorem_4_2_instance(n);
    const ClosNetwork net = ClosNetwork::paper(n);
    const MacroSwitch ms = MacroSwitch::paper(n);

    // Confirm the macro max-min rates first.
    const auto macro = max_min_fair<Rational>(ms, instantiate(ms, inst.flows));
    const bool macro_ok = macro.rates() == inst.macro_rates;

    const FlowSet flows = instantiate(net, inst.flows);
    const auto full = find_feasible_routing(net, flows, inst.macro_rates);

    FlowCollection reduced = inst.flows;
    std::vector<Rational> reduced_rates = inst.macro_rates;
    reduced.pop_back();  // type 3 is last
    reduced_rates.pop_back();
    const auto without_type3 =
        find_feasible_routing(net, instantiate(net, reduced), reduced_rates);

    table.add_row({std::to_string(n), std::to_string(inst.flows.size()),
                   std::string("1, 1/") + std::to_string(n) + ", 1" +
                       (macro_ok ? "" : "  (MISMATCH!)"),
                   full.feasible ? "YES (contradicts paper!)" : "no",
                   std::to_string(full.nodes_explored),
                   without_type3.feasible ? "yes" : "NO (contradicts paper!)"});
  }
  std::cout << table << '\n';

  std::cout << "(n = 5 and beyond: the exhaustive infeasibility proof is beyond a\n"
               " bench-sized search budget; Theorem 4.2's induction covers all n >= 3.)\n\n";

  std::cout << "consequence (paper §4.1): since no routing replicates a^MmF, every\n"
               "routing's max-min vector is lexicographically below the macro's, i.e.\n"
               "a^MmF > a^L-MmF for this collection.\n";
  return 0;
}
