// E17 (extension) — the throughput-fairness frontier of the routing space.
//
// The paper's Q3 asks how routing trades throughput against fairness. For
// small instances we can answer *completely*: enumerate every routing and
// print the exact Pareto frontier of (throughput, worst-off flow rate). The
// lex-max-min and throughput-max-min optima sit at the frontier's two ends;
// everything in between is a routing someone could reasonably operate.
#include <iostream>

#include "core/adversarial.hpp"
#include "fairness/waterfill.hpp"
#include "routing/exhaustive.hpp"
#include "util/table.hpp"

using namespace closfair;

namespace {

void print_frontier(const char* title, const ClosNetwork& net, const FlowSet& flows) {
  const auto frontier = throughput_fairness_frontier(net, flows);
  std::cout << title << " (" << frontier.size() << " Pareto point(s)):\n";
  TextTable table({"throughput", "min flow rate", "example middles"});
  for (const ParetoPoint& p : frontier) {
    std::string middles;
    for (int m : p.middles) {
      if (!middles.empty()) middles += ' ';
      middles += std::to_string(m);
    }
    table.add_row({p.throughput.to_string(), p.min_rate.to_string(), middles});
  }
  std::cout << table << '\n';
}

}  // namespace

int main() {
  std::cout << "=== E17: exact throughput-vs-fairness Pareto frontiers ===\n\n";

  {
    const ClosNetwork net = ClosNetwork::paper(2);
    const Example23 ex = example_2_3();
    print_frontier("Example 2.3 in C_2", net, instantiate(net, ex.instance.flows));
  }
  {
    const ClosNetwork net = ClosNetwork::paper(3);
    const AdversarialInstance inst = theorem_5_4_instance(3, 2);
    print_frontier("Theorem 5.4 gadget (n=3, k=2) in C_3", net,
                   instantiate(net, inst.flows));
  }
  {
    const ClosNetwork net = ClosNetwork::paper(5);
    const AdversarialInstance inst = theorem_5_4_instance(5, 1);
    print_frontier("stacked gadgets (n=5, k=1) in C_5", net, instantiate(net, inst.flows));
  }
  {
    // k = 2 is where the trade-off opens: the lex end keeps every flow at
    // 1/3 while sacrificing routings buy more total throughput.
    const ClosNetwork net = ClosNetwork::paper(5);
    const AdversarialInstance inst = theorem_5_4_instance(5, 2);
    print_frontier("stacked gadgets (n=5, k=2) in C_5", net, instantiate(net, inst.flows));
  }

  std::cout << "reading: when the frontier is a single point, fairness and throughput\n"
               "agree and routing is easy; the adversarial families stretch it into a\n"
               "genuine trade-off curve — the operator must *choose*, which is exactly\n"
               "the incongruence R3 formalizes.\n";
  return 0;
}
