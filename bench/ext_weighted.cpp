// E11 (extension) — weighted congestion control vs R2 starvation.
//
// The paper's §7 proposes relative max-min fairness as the objective that
// might preserve the macro-switch abstraction. This bench measures its
// congestion-control analogue: weight every flow by its macro-switch rate,
// so progressive filling maximizes min a(f)/macro(f) per routing. On the
// Theorem 4.3 instance the type 3 flow recovers from 1/n to n/(2n-1) > 1/2
// under the very same witness routing.
#include <iostream>

#include "core/adversarial.hpp"
#include "fairness/waterfill.hpp"
#include "fairness/weighted.hpp"
#include "routing/relative_maxmin.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace closfair;

int main() {
  std::cout << "=== E11: macro-weighted fairness vs the 1/n starvation (R2) ===\n\n";

  TextTable table({"n", "type3 plain (=1/n)", "type3 weighted", "n/(2n-1)",
                   "min ratio plain", "min ratio weighted"});
  for (int n : {3, 4, 5, 6, 8}) {
    const AdversarialInstance inst = theorem_4_3_instance(n);
    const ClosNetwork net = ClosNetwork::paper(n);
    const FlowSet flows = instantiate(net, inst.flows);
    const Routing routing = expand_routing(net, flows, *inst.witness);

    const auto plain = max_min_fair<Rational>(net.topology(), flows, routing);
    const auto weighted =
        weighted_max_min_fair<Rational>(net.topology(), flows, routing, inst.macro_rates);

    auto min_ratio = [&](const Allocation<Rational>& alloc) {
      Rational worst{1};
      for (FlowIndex f = 0; f < flows.size(); ++f) {
        worst = min(worst, alloc.rate(f) / inst.macro_rates[f]);
      }
      return worst;
    };

    const FlowIndex type3 = flows.size() - 1;
    table.add_row({std::to_string(n), plain.rate(type3).to_string(),
                   weighted.rate(type3).to_string(),
                   Rational(n, 2 * n - 1).to_string(),
                   min_ratio(plain).to_string(), min_ratio(weighted).to_string()});
  }
  std::cout << table << '\n';

  std::cout << "routing + weighting together (relative-max-min search, heuristic) on\n"
               "the Theorem 4.3 instance:\n";
  TextTable search_table({"n", "worst ratio (plain witness)", "worst ratio (search)"});
  for (int n : {3, 4}) {
    const AdversarialInstance inst = theorem_4_3_instance(n);
    const ClosNetwork net = ClosNetwork::paper(n);
    const FlowSet flows = instantiate(net, inst.flows);
    const Routing routing = expand_routing(net, flows, *inst.witness);
    const auto plain = max_min_fair<Rational>(net.topology(), flows, routing);
    Rational worst_plain{1};
    for (FlowIndex f = 0; f < flows.size(); ++f) {
      worst_plain = min(worst_plain, plain.rate(f) / inst.macro_rates[f]);
    }
    Rng rng(static_cast<std::uint64_t>(n) * 5 + 1);
    const auto search =
        relative_max_min_search(net, flows, inst.macro_rates, rng, 2, 3000);
    search_table.add_row({std::to_string(n), worst_plain.to_string(),
                          search.worst_ratio.to_string()});
  }
  std::cout << search_table << '\n';

  std::cout << "reading: weighting by macro rates bounds every flow's loss to ~1/2 on\n"
               "this family — far from the 1/n collapse of unweighted lex-max-min\n"
               "fairness, supporting the paper's conjecture that relative max-min\n"
               "fairness is the better objective for a macro-switch abstraction.\n";
  return 0;
}
