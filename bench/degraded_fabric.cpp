// degraded_fabric — R2/R3 re-measured on fabrics with failed middle switches.
//
//   $ ./degraded_fabric [OUT.json]
//
// The paper's impossibility results are proven on pristine Clos fabrics; this
// harness asks how the same adversarial instances behave as middles die
// (fault/fault.hpp worst-case outages). Parts A-C issue every cell as a
// declarative ScenarioSpec through the closfair::svc service (the
// adversarial flow sets ride inline as text-format instances, the outages as
// fault.worst_case_outage), so the service path is pinned to the same exact
// rational anchors as driving the library directly. Four parts:
//
//   A. R2 starvation (Theorem 4.3): the type 3 flow's lex-max-min rate ratio
//      vs its macro rate, for f = 0..n-2 failed middles. f = 0 must
//      reproduce the pristine 1/n of EXPERIMENTS.md E4.
//   B. R2 replication (Theorem 4.2): the macro rates stay unroutable on the
//      pristine fabric — the E3 anchors (730 / 527,324 search nodes) pin the
//      exact-search trajectory.
//   C. R3 throughput gap (Theorem 5.4 gadgets): exact lex- and
//      throughput-max-min by exhaustive search at 1, 2, and 8 threads, for
//      f = 0..n-2 failed middles. Every thread count must return identical
//      rational outputs AND identical work counters (waterfill invocations,
//      routings covered) — the determinism gate. f = 0 reproduces the E17
//      frontier endpoints: (5,2) lex (8/3, min 1/3) vs throughput (3, 1/4).
//   D. RCP under a transient mid-run link failure: the rate-control loop
//      must re-converge to the degraded fabric's exact water-fill rates and
//      report a positive recovery-round count (direct, not via svc — the
//      rate-control simulator is not a scenario policy).
//
// Emits BENCH_degraded.json (path overridable) with every measured table and
// the obs registry snapshot (fault.* / rate_control.* / svc.* counters)
// under a "metrics" key; exits non-zero if any check fails.
#include <algorithm>
#include <cmath>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/adversarial.hpp"
#include "fairness/waterfill.hpp"
#include "fault/fault.hpp"
#include "io/json_export.hpp"
#include "io/text_format.hpp"
#include "obs/obs.hpp"
#include "sim/rate_control.hpp"
#include "svc/service.hpp"
#include "util/json.hpp"
#include "util/table.hpp"

using namespace closfair;

namespace {

int failures = 0;

void check(bool ok, const std::string& what) {
  if (!ok) {
    std::cerr << "CHECK FAILED: " << what << '\n';
    ++failures;
  }
}

/// The adversarial flow set as canonical inline instance text (the one way a
/// ScenarioSpec carries an arbitrary flow list). `with_rates` attaches the
/// instance's macro rates as declared @rate targets (Part B's replication
/// question).
std::string inline_instance(int n, const AdversarialInstance& inst, bool with_rates) {
  InstanceSpec is;
  is.params = ClosNetwork::Params{n, 2 * n, n, Rational{1}};
  is.flows = inst.flows;
  if (with_rates) {
    is.rates.assign(inst.macro_rates.begin(), inst.macro_rates.end());
  }
  return format_instance(is);
}

std::vector<Rational> sorted_rates(const svc::ScenarioResult& r) {
  std::vector<Rational> s = r.rates;
  std::sort(s.begin(), s.end());
  return s;
}

/// Evaluate one spec through the service; a failed cell is a harness bug.
svc::ScenarioResult run(svc::Service& service, const svc::ScenarioSpec& spec,
                        const std::string& what) {
  const svc::BatchEntry entry = service.evaluate(spec);
  check(entry.ok(), what + ": " + entry.error);
  return entry.result;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_degraded.json";
  if (argc > 1) out_path = argv[1];
  if (argc > 2 || (!out_path.empty() && out_path[0] == '-')) {
    std::cerr << "usage: degraded_fabric [OUT.json]\n";
    return 2;
  }
  obs::Registry::instance().reset();
  svc::Service service(svc::ServiceOptions{2, 256});

  Json report = Json::object();
  report.set("bench", Json::string("degraded_fabric"));

  // ---------------------------------------------------------------- Part A
  std::cout << "=== degraded fabric A: R2 starvation vs failed middles ===\n\n";
  Json part_a = Json::array();
  TextTable table_a({"n", "failed", "surviving", "rerouted", "type3 lex rate",
                     "ratio vs macro", "pristine 1/n"});
  for (int n : {3, 4}) {
    const AdversarialInstance inst = theorem_4_3_instance(n);
    const std::string instance = inline_instance(n, inst, /*with_rates=*/false);

    for (int f = 0; f <= n - 2; ++f) {
      svc::ScenarioSpec spec;
      spec.workload.instance = instance;
      spec.topology.params = ClosNetwork::Params{n, 2 * n, n, Rational{1}};
      spec.routing.policy = "lex_climb";
      spec.routing.start = *inst.witness;
      spec.routing.reroute_dead = true;
      spec.fault.worst_case_outage = f;
      const svc::ScenarioResult r =
          run(service, spec, "A: cell (n=" + std::to_string(n) + ", f=" + std::to_string(f) + ")");

      const FlowIndex type3 = r.num_flows - 1;
      const std::size_t rerouted = r.rerouted.value_or(0);
      const Rational ratio = r.rates[type3] / r.macro_rates[type3];

      if (f == 0) {
        check(rerouted == 0, "A: pristine witness needs no reroute (n=" + std::to_string(n) + ")");
        check(ratio == Rational{1, n},
              "A: pristine starvation ratio is 1/n (n=" + std::to_string(n) + ")");
      }
      table_a.add_row({std::to_string(n), std::to_string(f),
                       std::to_string(r.surviving_middles.value_or(0)),
                       std::to_string(rerouted), r.rates[type3].to_string(),
                       ratio.to_string(), Rational{1, n}.to_string()});
      Json row = Json::object();
      row.set("n", Json::number(static_cast<std::int64_t>(n)));
      row.set("failed_middles", Json::number(static_cast<std::int64_t>(f)));
      row.set("rerouted_flows", Json::number(static_cast<std::int64_t>(rerouted)));
      row.set("type3_lex_rate", Json::string(r.rates[type3].to_string()));
      row.set("ratio_vs_macro", Json::string(ratio.to_string()));
      part_a.push_back(std::move(row));
    }
  }
  std::cout << table_a << '\n';
  report.set("starvation", std::move(part_a));

  // ---------------------------------------------------------------- Part B
  std::cout << "=== degraded fabric B: R2 replication anchors (pristine) ===\n\n";
  Json part_b = Json::array();
  {
    const std::uint64_t expected_nodes[] = {730, 527324};
    int idx = 0;
    for (int n : {3, 4}) {
      const AdversarialInstance inst = theorem_4_2_instance(n);
      svc::ScenarioSpec spec;
      spec.workload.instance = inline_instance(n, inst, /*with_rates=*/true);
      spec.topology.params = ClosNetwork::Params{n, 2 * n, n, Rational{1}};
      spec.routing.policy = "replicate";
      const svc::ScenarioResult r =
          run(service, spec, "B: cell n=" + std::to_string(n));

      check(r.replication.has_value() && !r.replication->feasible,
            "B: macro rates unroutable on pristine C_" + std::to_string(n));
      const std::uint64_t nodes = r.replication ? r.replication->nodes_explored : 0;
      check(nodes == expected_nodes[idx],
            "B: E3 search-node anchor for n=" + std::to_string(n));
      std::cout << "n=" << n << ": "
                << (r.replication && r.replication->feasible ? "FEASIBLE (bug)" : "infeasible")
                << ", " << nodes << " nodes (anchor " << expected_nodes[idx] << ")\n";
      Json row = Json::object();
      row.set("n", Json::number(static_cast<std::int64_t>(n)));
      row.set("feasible", Json::boolean(r.replication && r.replication->feasible));
      row.set("nodes_explored", Json::number(static_cast<std::int64_t>(nodes)));
      part_b.push_back(std::move(row));
      ++idx;
    }
  }
  std::cout << '\n';
  report.set("replication", std::move(part_b));

  // ---------------------------------------------------------------- Part C
  std::cout << "=== degraded fabric C: R3 throughput gap vs failed middles ===\n\n";
  Json part_c = Json::array();
  TextTable table_c({"(n,k)", "failed", "lex T", "lex min", "tput T", "tput min",
                     "waterfills", "threads agree"});
  struct Gadget {
    int n;
    int k;
  };
  for (const Gadget g : {Gadget{3, 1}, Gadget{5, 2}}) {
    const AdversarialInstance inst = theorem_5_4_instance(g.n, g.k);
    const std::string instance = inline_instance(g.n, inst, /*with_rates=*/false);

    for (int f = 0; f <= g.n - 2; ++f) {
      // The determinism gate: identical rational outputs and identical work
      // counters at every thread count. prune_throughput_bound is off —
      // early-exit overshoot is the one legitimately thread-dependent
      // counter, so the gate excludes it by construction. Each thread count
      // is a distinct spec (threads is part of the content address), so all
      // three actually evaluate — the cache cannot shortcut the gate.
      bool threads_agree = true;
      svc::ScenarioResult lex_ref;
      svc::ScenarioResult tput_ref;
      for (const unsigned threads : {1u, 2u, 8u}) {
        svc::ScenarioSpec spec;
        spec.workload.instance = instance;
        spec.topology.params = ClosNetwork::Params{g.n, 2 * g.n, g.n, Rational{1}};
        spec.routing.threads = threads;
        spec.routing.prune_throughput_bound = false;
        spec.fault.worst_case_outage = f;
        const std::string where = " ((n,k)=(" + std::to_string(g.n) + "," +
                                  std::to_string(g.k) + "), f=" + std::to_string(f) +
                                  ", threads=" + std::to_string(threads) + ")";
        spec.routing.policy = "exhaustive_lex";
        const svc::ScenarioResult lex = run(service, spec, "C: lex cell" + where);
        spec.routing.policy = "exhaustive_tput";
        const svc::ScenarioResult tput = run(service, spec, "C: tput cell" + where);
        if (threads == 1u) {
          lex_ref = lex;
          tput_ref = tput;
          continue;
        }
        threads_agree = threads_agree && sorted_rates(lex) == sorted_rates(lex_ref) &&
                        lex.middles == lex_ref.middles && lex.search == lex_ref.search &&
                        sorted_rates(tput) == sorted_rates(tput_ref) &&
                        tput.middles == tput_ref.middles && tput.search == tput_ref.search;
      }
      check(threads_agree, "C: thread counts 1/2/8 agree ((n,k)=(" +
                               std::to_string(g.n) + "," + std::to_string(g.k) +
                               "), f=" + std::to_string(f) + ")");

      const Rational lex_t = lex_ref.throughput;
      const Rational lex_min = sorted_rates(lex_ref).front();
      const Rational tput_t = tput_ref.throughput;
      const Rational tput_min = sorted_rates(tput_ref).front();
      if (f == 0 && g.n == 3) {
        // Single gadget: one-point frontier (E17) at the macro T^MmF = 3/2.
        check(lex_t == Rational{3, 2} && tput_t == Rational{3, 2},
              "C: (3,1) pristine one-point frontier at 3/2");
      }
      if (f == 0 && g.n == 5) {
        check(lex_t == Rational{8, 3} && lex_min == Rational{1, 3},
              "C: (5,2) pristine lex endpoint (8/3, 1/3)");
        check(tput_t == Rational{3} && tput_min == Rational{1, 4},
              "C: (5,2) pristine throughput endpoint (3, 1/4)");
      }

      const std::uint64_t waterfills = lex_ref.search ? lex_ref.search->waterfill_invocations : 0;
      table_c.add_row({"(" + std::to_string(g.n) + "," + std::to_string(g.k) + ")",
                       std::to_string(f), lex_t.to_string(), lex_min.to_string(),
                       tput_t.to_string(), tput_min.to_string(),
                       std::to_string(waterfills), threads_agree ? "yes" : "NO"});
      Json row = Json::object();
      row.set("n", Json::number(static_cast<std::int64_t>(g.n)));
      row.set("k", Json::number(static_cast<std::int64_t>(g.k)));
      row.set("failed_middles", Json::number(static_cast<std::int64_t>(f)));
      row.set("lex_throughput", Json::string(lex_t.to_string()));
      row.set("lex_min_rate", Json::string(lex_min.to_string()));
      row.set("tput_throughput", Json::string(tput_t.to_string()));
      row.set("tput_min_rate", Json::string(tput_min.to_string()));
      row.set("waterfill_invocations",
              Json::number(static_cast<std::int64_t>(waterfills)));
      row.set("threads_agree", Json::boolean(threads_agree));
      part_c.push_back(std::move(row));
    }
  }
  std::cout << table_c << '\n';
  report.set("throughput_gap", std::move(part_c));

  // ---------------------------------------------------------------- Part D
  std::cout << "=== degraded fabric D: RCP recovery from a transient failure ===\n\n";
  Json part_d = Json::object();
  {
    const AdversarialInstance inst = theorem_4_3_instance(3);
    const ClosNetwork net = ClosNetwork::paper(3);
    const FlowSet flows = instantiate(net, inst.flows);
    const Routing routing = expand_routing(net, flows, *inst.witness);

    RcpParams params;
    params.failures.push_back(LinkFailureEvent{40, net.uplink(1, 1), 0.5});
    const auto rcp = rcp_rate_control(net.topology(), flows, routing, params);
    check(rcp.converged, "D: RCP re-converges after the transient failure");
    check(rcp.recovery_rounds > 0, "D: recovery-round count is positive");

    // Final rates must be the degraded fabric's exact water-fill rates.
    fault::FailureScenario half;
    half.derated_links.push_back(
        fault::LinkDeration{fault::LinkStage::kUplink, 1, 1, Rational{1, 2}});
    const ClosNetwork degraded = fault::degrade(net, half);
    const auto oracle = max_min_fair<Rational>(degraded, flows, *inst.witness);
    double max_err = 0.0;
    for (FlowIndex fl = 0; fl < flows.size(); ++fl) {
      max_err = std::max(max_err,
                         std::abs(rcp.rates.rate(fl) - oracle.rate(fl).to_double()));
    }
    check(max_err < 1e-6, "D: RCP rates match the degraded water-fill oracle");
    std::cout << "converged in " << rcp.iterations << " rounds, recovery "
              << rcp.recovery_rounds << " rounds after the failure, max |rcp - oracle| = "
              << max_err << "\n\n";
    part_d.set("iterations", Json::number(static_cast<std::int64_t>(rcp.iterations)));
    part_d.set("recovery_rounds",
               Json::number(static_cast<std::int64_t>(rcp.recovery_rounds)));
    part_d.set("max_error_vs_waterfill", Json::number(max_err));
  }
  report.set("rcp_recovery", std::move(part_d));

  Json checks = Json::object();
  checks.set("failed", Json::number(static_cast<std::int64_t>(failures)));
  report.set("checks", std::move(checks));
  const obs::MetricsSnapshot snapshot = obs::Registry::instance().snapshot();
  report.set("metrics", metrics_to_json(snapshot));

  std::ofstream out(out_path);
  out << report.dump(2) << '\n';
  out.close();
  if (!out) {
    std::cerr << "error: could not write report to " << out_path << '\n';
    return 1;
  }
  std::cout << "report written to " << out_path << '\n';

  if (failures > 0) {
    std::cerr << failures << " check(s) FAILED\n";
    return 1;
  }
  std::cout << "all checks passed\n";
  return 0;
}
