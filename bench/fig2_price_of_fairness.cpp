// E2 — Theorem 3.4 / Example 3.3 / Figure 2: the price of fairness in a
// macro-switch.
//
// Sweeps the adversarial family's k (parallel type 2 flows): measured T^MmF
// and T^MT against the closed forms, with the ratio T^MmF/T^MT converging to
// the paper's 1/2 bound from above. A second table shows the bound holding
// (far from tight) on stochastic workloads.
#include <iostream>

#include "core/adversarial.hpp"
#include "core/analysis.hpp"
#include "core/theorems.hpp"
#include "util/table.hpp"
#include "workload/stochastic.hpp"

using namespace closfair;

int main() {
  std::cout << "=== E2: Theorem 3.4 — T^MmF >= 1/2 T^MT, tight as k -> inf ===\n\n";

  {
    TextTable table({"k", "T^MmF (meas)", "T^MmF (paper)", "T^MT (meas)", "T^MT (paper)",
                     "ratio (meas)", "ratio -> 1/2"});
    const MacroSwitch ms = MacroSwitch::paper(1);
    for (int k : {1, 2, 4, 8, 16, 64, 256, 1024, 4096}) {
      const AdversarialInstance inst = theorem_3_4_instance(1, k);
      const auto a = analyze_macro(ms, instantiate(ms, inst.flows));
      const Theorem34Prediction pred = predict_theorem_3_4(k);
      table.add_row({std::to_string(k), a.t_maxmin.to_string(), pred.t_maxmin.to_string(),
                     a.t_max_throughput.to_string(), pred.t_max_throughput.to_string(),
                     fmt_double(a.price_of_fairness.to_double(), 6),
                     fmt_double(pred.fairness_ratio.to_double(), 6)});
    }
    std::cout << table << '\n';
  }

  std::cout << "price of fairness across macro-switch sizes (k = 16):\n";
  {
    TextTable table({"n (MS_n)", "T^MmF", "T^MT", "ratio"});
    for (int n : {1, 2, 4, 8}) {
      const MacroSwitch ms = MacroSwitch::paper(n);
      const AdversarialInstance inst = theorem_3_4_instance(n, 16);
      const auto a = analyze_macro(ms, instantiate(ms, inst.flows));
      table.add_row({std::to_string(n), a.t_maxmin.to_string(),
                     a.t_max_throughput.to_string(),
                     fmt_double(a.price_of_fairness.to_double(), 6)});
    }
    std::cout << table << '\n';
  }

  std::cout << "bound check on stochastic workloads (MS_4, 10 seeds each):\n";
  {
    TextTable table({"workload", "min ratio", "mean ratio", ">= 1/2"});
    const int n = 4;
    const MacroSwitch ms = MacroSwitch::paper(n);
    struct Row {
      const char* name;
      int kind;
    };
    for (const Row& row : {Row{"uniform (64 flows)", 0}, Row{"permutation", 1},
                           Row{"zipf 1.1 (64 flows)", 2}, Row{"incast (24 senders)", 3}}) {
      double min_ratio = 1.0;
      double sum = 0.0;
      for (int seed = 0; seed < 10; ++seed) {
        Rng rng(static_cast<std::uint64_t>(seed) * 7 + 1);
        const Fabric fabric{2 * n, n};
        FlowCollection specs;
        switch (row.kind) {
          case 0: specs = uniform_random(fabric, 64, rng); break;
          case 1: specs = random_permutation(fabric, rng); break;
          case 2: specs = zipf_destinations(fabric, 64, 1.1, rng); break;
          default: specs = incast(fabric, 24, 1, 1, rng); break;
        }
        const auto a = analyze_macro(ms, instantiate(ms, specs));
        const double ratio = a.price_of_fairness.to_double();
        min_ratio = std::min(min_ratio, ratio);
        sum += ratio;
      }
      table.add_row({row.name, fmt_double(min_ratio, 4), fmt_double(sum / 10, 4),
                     min_ratio >= 0.5 ? "yes" : "VIOLATED"});
    }
    std::cout << table << '\n';
  }

  std::cout << "paper shape: ratio decreases toward (but never below) 1/2 on the\n"
               "adversarial family; stochastic workloads sit far from the bound.\n";
  return 0;
}
