// serve_net — wire-protocol server benchmark (src/wire over src/svc).
//
//   $ ./serve_net [OUT.json]
//
// Gates the TCP front-end's production contracts over a real loopback
// socket:
//
//   1. Byte identity: a mixed pipelined request stream (bare specs,
//      envelopes, duplicates, a parse error, an evaluation error) returns
//      responses byte-identical to the batch binary's, from fresh servers at
//      1, 2, and 8 workers.
//   2. Latency under load: three load points (two open-loop Poisson paced,
//      one unpaced pipeline blast) of a cold/warm/duplicate mix, reporting
//      p50/p99/p999 latency and achieved RPS.
//   3. Overload shedding: offered load at >= 2x the measured sustainable
//      rate against a watermark-1 server must produce explicit overload
//      responses — every request still answered, in order, with bounded
//      queueing — not unbounded buffering.
//   4. Graceful drain: drain() with evaluations in flight answers everything
//      admitted and closes cleanly.
//
// Emits BENCH_serve_net.json (path overridable) with the latency tables and
// an obs counter snapshot — scripts/bench.sh diffs the deterministic
// counters against the committed baseline. The snapshot is taken *before*
// the overload phase (sheds make svc.cache_misses timing-dependent), and the
// svc.cache_hits / wire.dedup_hits split — which depends on whether a repeat
// arrives while its first occurrence is still in flight — is folded into one
// deterministic svc.cache_hits_plus_dedup counter. Exits non-zero if any
// gate fails.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "io/json_export.hpp"
#include "obs/obs.hpp"
#include "obs/rt.hpp"
#include "svc/service.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "wire/client.hpp"
#include "wire/protocol.hpp"
#include "wire/server.hpp"

using namespace closfair;
using Clock = std::chrono::steady_clock;

namespace {

int failures = 0;

void check(bool ok, const std::string& what) {
  if (!ok) {
    std::cerr << "CHECK FAILED: " << what << '\n';
    ++failures;
  }
}

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// One evaluation cell, unique per `variant`: small enough that a load point
/// finishes in seconds, expensive enough that queueing is real.
std::string spec_body(std::uint64_t variant) {
  svc::ScenarioSpec spec;
  spec.topology.params = ClosNetwork::Params{3, 6, 3, Rational{1}};
  spec.workload.generator = "uniform";
  spec.workload.count = 12;
  spec.workload.seed = 5000 + variant;
  spec.routing.policy = variant % 2 == 0 ? "greedy" : "ecmp";
  return spec.canonical();
}

// ------------------------------------------------------- byte-identity gate

std::vector<std::string> mixed_request_lines() {
  std::vector<std::string> lines;
  for (std::uint64_t i = 0; i < 6; ++i) {
    lines.push_back("{\"id\":" + std::to_string(i) + ",\"spec\":" + spec_body(i) + "}");
  }
  lines.push_back(spec_body(2));        // bare duplicate
  lines.push_back("{definitely not json");
  svc::ScenarioSpec bad;                // evaluation error: wrong start length
  bad.topology.params = ClosNetwork::Params{2, 4, 2, Rational{1}};
  bad.workload.generator = "permutation";
  bad.routing.policy = "static";
  bad.routing.start = {1};
  lines.push_back(R"({"id":"boom","spec":)" + bad.to_json().dump() + "}");
  lines.push_back(lines[0]);            // envelope duplicate
  return lines;
}

/// The batch binary's answers for the same lines: the reference half of the
/// byte-identity gate, computed in process exactly like run_batch().
std::vector<std::string> batch_responses(const std::vector<std::string>& lines) {
  std::vector<wire::Request> requests;
  std::vector<svc::ScenarioSpec> specs;
  std::vector<std::size_t> spec_of;
  for (const std::string& line : lines) {
    wire::Request request = wire::parse_request(line);
    if (request.ok()) {
      spec_of.push_back(specs.size());
      specs.push_back(*request.spec);
    } else {
      spec_of.push_back(SIZE_MAX);
    }
    requests.push_back(std::move(request));
  }
  svc::Service service(svc::ServiceOptions{1, 512});
  const std::vector<svc::BatchEntry> batch = service.evaluate_batch(specs);
  std::vector<std::string> out;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    if (spec_of[i] == SIZE_MAX) {
      out.push_back(wire::render_parse_error(requests[i].id, requests[i].error));
      continue;
    }
    const svc::BatchEntry& entry = batch[spec_of[i]];
    out.push_back(entry.ok()
                      ? wire::render_result(requests[i].id, entry.hash, entry.cached,
                                            entry.result)
                      : wire::render_eval_error(requests[i].id, entry.hash,
                                                entry.error));
  }
  return out;
}

// ------------------------------------------------------------- load points

struct LoadResult {
  double target_rps = 0.0;  ///< 0 = unpaced blast
  double achieved_rps = 0.0;
  double seconds = 0.0;
  std::size_t requests = 0;
  std::size_t completed = 0;
  std::size_t cached = 0;
  std::size_t overloads = 0;
  std::size_t errors = 0;
  double p50_us = 0.0, p99_us = 0.0, p999_us = 0.0, max_us = 0.0;
};

double percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const auto idx = static_cast<std::size_t>(q * static_cast<double>(sorted.size()));
  return sorted[std::min(idx, sorted.size() - 1)];
}

/// Cold/warm/duplicate mix (60:30:10): cold = fresh spec, warm = re-request
/// a uniformly random earlier one, duplicate = repeat the previous line.
std::vector<std::string> mixed_traffic(std::size_t count, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::string> lines;
  std::vector<std::string> history;
  std::uint64_t cold = 0;
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint64_t draw = rng.next_below(100);
    std::string body;
    if (!history.empty() && draw >= 60) {
      body = draw < 90 ? history[rng.next_below(history.size())] : history.back();
    } else {
      body = spec_body(100 + cold++);
    }
    history.push_back(body);
    lines.push_back(body);
  }
  return lines;
}

/// One open-loop run against a fresh server: a sender thread paces arrivals
/// (Poisson at `target_rps`; unpaced when 0) while the main thread receives
/// and classifies, matching latencies FIFO (responses are in order).
LoadResult run_load_point(const std::vector<std::string>& lines, double target_rps,
                          unsigned workers, wire::ServerOptions options) {
  svc::Service service(svc::ServiceOptions{workers, 4096});
  options.workers = workers;
  wire::Server server(service, options);
  server.start();

  wire::Client client;
  client.connect("127.0.0.1", server.port());
  std::vector<std::atomic<std::int64_t>> send_ns(lines.size());

  std::thread sender([&] {
    Rng rng(99);
    const Clock::time_point start = Clock::now();
    double offset_s = 0.0;
    for (std::size_t i = 0; i < lines.size(); ++i) {
      if (target_rps > 0.0) {
        offset_s += rng.next_exponential(target_rps);
        std::this_thread::sleep_until(
            start + std::chrono::duration_cast<Clock::duration>(
                        std::chrono::duration<double>(offset_s)));
      }
      send_ns[i].store(Clock::now().time_since_epoch().count(),
                       std::memory_order_release);
      client.send(lines[i]);
    }
    client.finish_sending();
  });

  LoadResult r;
  r.target_rps = target_rps;
  r.requests = lines.size();
  std::vector<double> latencies;
  const Clock::time_point t0 = Clock::now();
  while (auto response = client.recv()) {
    const std::int64_t now_ns = Clock::now().time_since_epoch().count();
    const std::int64_t sent = send_ns[r.completed].load(std::memory_order_acquire);
    latencies.push_back(static_cast<double>(now_ns - sent) / 1000.0);
    ++r.completed;
    if (response->find("\"overload\":true") != std::string::npos) {
      ++r.overloads;
    } else if (response->find("\"error\":") != std::string::npos) {
      ++r.errors;
    } else if (response->find("\"cached\":true") != std::string::npos) {
      ++r.cached;
    }
  }
  r.seconds = seconds_since(t0);
  sender.join();
  client.close();
  server.drain();

  std::sort(latencies.begin(), latencies.end());
  r.achieved_rps = r.seconds > 0.0 ? static_cast<double>(r.completed) / r.seconds : 0.0;
  r.p50_us = percentile(latencies, 0.50);
  r.p99_us = percentile(latencies, 0.99);
  r.p999_us = percentile(latencies, 0.999);
  r.max_us = latencies.empty() ? 0.0 : latencies.back();
  return r;
}

Json load_result_json(const LoadResult& r) {
  Json j = Json::object();
  j.set("target_rps", Json::number(r.target_rps));
  j.set("achieved_rps", Json::number(r.achieved_rps));
  j.set("seconds", Json::number(r.seconds));
  j.set("requests", Json::number(static_cast<std::int64_t>(r.requests)));
  j.set("completed", Json::number(static_cast<std::int64_t>(r.completed)));
  j.set("cached", Json::number(static_cast<std::int64_t>(r.cached)));
  j.set("overloads", Json::number(static_cast<std::int64_t>(r.overloads)));
  j.set("errors", Json::number(static_cast<std::int64_t>(r.errors)));
  Json latency = Json::object();
  latency.set("p50_us", Json::number(r.p50_us));
  latency.set("p99_us", Json::number(r.p99_us));
  latency.set("p999_us", Json::number(r.p999_us));
  latency.set("max_us", Json::number(r.max_us));
  j.set("latency", latency);
  return j;
}

// ---------------------------------------------------- stage-latency windows

/// Registry histogram snapshot by name (zeroed HistogramValue when absent).
obs::MetricsSnapshot::HistogramValue find_histogram(
    const obs::MetricsSnapshot& snapshot, const std::string& name) {
  for (const auto& h : snapshot.histograms) {
    if (h.name == name) return h;
  }
  obs::MetricsSnapshot::HistogramValue empty;
  empty.name = name;
  empty.buckets.assign(obs::kHistogramBuckets, 0);
  return empty;
}

/// Bucket-wise difference after - before: isolates one phase's recordings
/// from a cumulative histogram. min/max are unknowable for a window, so
/// they are zeroed — estimate_quantile_ns then skips its range clamp.
obs::MetricsSnapshot::HistogramValue histogram_window(
    const obs::MetricsSnapshot::HistogramValue& before,
    const obs::MetricsSnapshot::HistogramValue& after) {
  obs::MetricsSnapshot::HistogramValue window;
  window.name = after.name;
  window.count = after.count - before.count;
  window.total_ns = after.total_ns - before.total_ns;
  window.buckets.assign(obs::kHistogramBuckets, 0);
  for (std::size_t i = 0; i < window.buckets.size(); ++i) {
    const std::uint64_t b = i < before.buckets.size() ? before.buckets[i] : 0;
    const std::uint64_t a = i < after.buckets.size() ? after.buckets[i] : 0;
    window.buckets[i] = a - b;
  }
  return window;
}

Json stage_window_json(const obs::MetricsSnapshot::HistogramValue& window) {
  Json j = Json::object();
  j.set("count", Json::number(static_cast<std::int64_t>(window.count)));
  j.set("total_ns", Json::number(static_cast<std::int64_t>(window.total_ns)));
  j.set("mean_ns",
        Json::number(window.count == 0
                         ? 0.0
                         : static_cast<double>(window.total_ns) /
                               static_cast<double>(window.count)));
  j.set("p50_ns", Json::number(obs::estimate_quantile_ns(window, 0.50)));
  j.set("p99_ns", Json::number(obs::estimate_quantile_ns(window, 0.99)));
  j.set("p999_ns", Json::number(obs::estimate_quantile_ns(window, 0.999)));
  return j;
}

/// The committed-baseline metrics view: every counter except the two whose
/// split is scheduling-dependent, replaced by their deterministic sum (for a
/// fixed request stream, repeat requests resolve as *either* an in-flight
/// dedup or a cache hit — which one depends on completion timing, but the
/// total never does).
obs::MetricsSnapshot filtered_snapshot() {
  obs::MetricsSnapshot snapshot = obs::Registry::instance().snapshot();
  std::uint64_t folded = 0;
  std::vector<obs::MetricsSnapshot::CounterValue> kept;
  for (const auto& c : snapshot.counters) {
    if (c.name == "svc.cache_hits" || c.name == "wire.dedup_hits" ||
        c.name == "svc.dedup_hits") {
      folded += c.value;
    } else {
      kept.push_back(c);
    }
  }
  kept.push_back({"svc.cache_hits_plus_dedup", folded});
  std::sort(kept.begin(), kept.end(),
            [](const auto& a, const auto& b) { return a.name < b.name; });
  snapshot.counters = std::move(kept);
  snapshot.gauges.clear();      // queue depths / drain times are load-dependent
  snapshot.histograms.clear();  // span durations are wall clock
  return snapshot;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_serve_net.json";
  if (argc > 1) out_path = argv[1];
  if (argc > 2 || (!out_path.empty() && out_path[0] == '-')) {
    std::cerr << "usage: serve_net [OUT.json]\n";
    return 2;
  }
  obs::Registry::instance().reset();

  Json report = Json::object();
  report.set("bench", Json::string("serve_net"));

  // ------------------------------------------------------- 1. byte identity
  std::cout << "=== wire server benchmark ===\n\n"
            << "--- byte identity vs batch mode (+ concurrent admin scraper) ---\n";
  const std::vector<std::string> lines = mixed_request_lines();
  const std::vector<std::string> expected = batch_responses(lines);
  TextTable table_id({"workers", "responses", "identical", "scrapes"});
  for (const unsigned workers : {1u, 2u, 8u}) {
    svc::Service service(svc::ServiceOptions{workers, 512});
    wire::ServerOptions options;
    options.workers = workers;
    wire::Server server(service, options);
    server.start();

    // Concurrent admin client on its own connection: a fixed number of
    // scrapes (so wire.admin_requests stays deterministic for the counter
    // baseline) racing the data-plane replay below. The gate: scraping must
    // not perturb data-plane bytes, and every scrape must answer
    // well-formed.
    std::size_t scrapes_ok = 0;
    std::thread scraper([&] {
      wire::Client admin;
      admin.connect("127.0.0.1", server.port());
      const char* verbs[] = {"metricsz", "tracez", "statusz",
                             "metricsz", "tracez", "statusz"};
      for (const char* verb : verbs) {
        const std::string response = admin.call(verb);
        if (response.rfind(std::string("{\"admin\":\"") + verb + "\"", 0) == 0) {
          ++scrapes_ok;
        }
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      }
      admin.close();
    });

    wire::Client client;
    client.connect("127.0.0.1", server.port());
    for (const std::string& line : lines) client.send(line);
    client.finish_sending();
    bool identical = true;
    std::size_t received = 0;
    while (auto response = client.recv()) {
      if (received >= expected.size() || *response != expected[received]) {
        identical = false;
      }
      ++received;
    }
    identical = identical && received == expected.size();
    check(identical, "socket responses byte-identical to batch at " +
                         std::to_string(workers) + " workers");
    scraper.join();
    check(scrapes_ok == 6, "all 6 concurrent admin scrapes answered well-formed at " +
                               std::to_string(workers) + " workers");
    table_id.add_row({std::to_string(workers), std::to_string(received),
                      identical ? "yes" : "NO",
                      std::to_string(scrapes_ok) + "/6"});
    client.close();
    server.drain();
  }
  std::cout << table_id << '\n';

  // Stage-window boundary: everything up to here is the (near-)unloaded
  // identity replay; the blast load point below queues deeply.
  const obs::MetricsSnapshot snapshot_after_identity =
      obs::Registry::instance().snapshot();

  // --------------------------------------------------------- 2. load points
  std::cout << "--- load points (cold/warm/duplicate 60:30:10, 1 connection) ---\n";
  const std::size_t kRequests = 400;
  const std::vector<std::string> traffic = mixed_traffic(kRequests, 7);
  const unsigned kWorkers = 4;
  Json points = Json::array();
  TextTable table_load({"target_rps", "achieved_rps", "completed", "cached",
                        "p50_us", "p99_us", "p999_us"});
  double sustainable_rps = 0.0;
  obs::MetricsSnapshot snapshot_after_blast;
  // Unpaced blast first: its achieved rate is the sustainable ceiling the
  // overload phase doubles. Admission limits sit above the request count so
  // the load points measure queueing latency, not shedding (and the counter
  // snapshot below stays deterministic — a shed evaluates nothing).
  wire::ServerOptions load_options;
  load_options.max_inflight_per_conn = kRequests;
  load_options.queue_high_watermark = kRequests;
  for (const double target : {0.0, 400.0, 800.0}) {
    const LoadResult r = run_load_point(traffic, target, kWorkers, load_options);
    if (target == 0.0) {
      sustainable_rps = r.achieved_rps;
      snapshot_after_blast = obs::Registry::instance().snapshot();
    }
    check(r.completed == r.requests,
          "load point answered every request (target " + fmt_double(target, 0) + ")");
    check(r.overloads == 0, "no sheds below the watermark (target " +
                                fmt_double(target, 0) + ")");
    check(r.errors == 0,
          "no errors in the load mix (target " + fmt_double(target, 0) + ")");
    check(r.cached > 0, "warm/duplicate traffic hit the cache (target " +
                            fmt_double(target, 0) + ")");
    table_load.add_row({target == 0.0 ? "blast" : fmt_double(target, 0),
                        fmt_double(r.achieved_rps, 1), std::to_string(r.completed),
                        std::to_string(r.cached), fmt_double(r.p50_us, 1),
                        fmt_double(r.p99_us, 1), fmt_double(r.p999_us, 1)});
    points.push_back(load_result_json(r));
  }
  std::cout << table_load << '\n';
  report.set("load_points", std::move(points));
  report.set("sustainable_rps", Json::number(sustainable_rps));

  // -------------------------------------------- 2b. stage-latency windows
  std::cout << "--- stage latency (wire.stage.queue_wait windows) ---\n";
  {
    // Unloaded window: the identity replays (a handful of pipelined
    // requests against idle workers). Loaded window: the unpaced blast (400
    // requests dumped into 4 workers → deep evaluation queue). Queue-wait
    // must be ~0 in the former and clearly nonzero — and larger — in the
    // latter.
    const auto unloaded = find_histogram(snapshot_after_identity,
                                         "wire.stage.queue_wait");
    const auto loaded = histogram_window(
        unloaded, find_histogram(snapshot_after_blast, "wire.stage.queue_wait"));
    const double unloaded_mean =
        unloaded.count == 0 ? 0.0
                            : static_cast<double>(unloaded.total_ns) /
                                  static_cast<double>(unloaded.count);
    const double loaded_mean =
        loaded.count == 0 ? 0.0
                          : static_cast<double>(loaded.total_ns) /
                                static_cast<double>(loaded.count);
    check(unloaded.count > 0, "identity phase recorded queue-wait stages");
    check(loaded.count > 0, "blast load point recorded queue-wait stages");
    check(unloaded_mean < 20e6,
          "unloaded queue-wait mean stays ~0 (< 20 ms; got " +
              fmt_double(unloaded_mean / 1e6, 2) + " ms)");
    check(loaded_mean > 0.0, "blast queue-wait is nonzero");
    check(loaded_mean > unloaded_mean,
          "blast queue-wait mean exceeds the unloaded mean");
    std::cout << "unloaded mean " << fmt_double(unloaded_mean / 1e3, 1)
              << " us (" << unloaded.count << " reqs), blast mean "
              << fmt_double(loaded_mean / 1e3, 1) << " us (" << loaded.count
              << " reqs), blast p99 "
              << fmt_double(obs::estimate_quantile_ns(loaded, 0.99) / 1e3, 1)
              << " us\n\n";
    Json stage_latency = Json::object();
    stage_latency.set("unloaded_queue_wait", stage_window_json(unloaded));
    stage_latency.set("blast_queue_wait", stage_window_json(loaded));
    report.set("stage_latency", std::move(stage_latency));
  }

  // Every flight-recorder entry must account for its wall time exactly:
  // the stage marks partition [arrival, finish] by construction, so the
  // stage durations sum to wall_ns with zero tolerance.
  {
    const std::vector<obs::rt::RequestTrace> recent =
        obs::rt::FlightRecorder::instance().recent();
    check(!recent.empty(), "flight recorder holds completed traces");
    std::size_t exact = 0;
    for (const obs::rt::RequestTrace& trace : recent) {
      std::uint64_t stage_sum = 0;
      for (const std::uint64_t ns : trace.stage_ns) stage_sum += ns;
      if (stage_sum == trace.wall_ns()) ++exact;
    }
    check(exact == recent.size(),
          "stage durations sum to wall time for every recorded trace");

    // Embed a tracez sample (the last few recent + shame entries) so the
    // committed baseline shows a real stage breakdown. Wall-clock values
    // are non-gating — scripts/bench.sh diffs only metrics.counters.
    Json sample = Json::object();
    Json recent_json = Json::array();
    const std::size_t first = recent.size() > 5 ? recent.size() - 5 : 0;
    for (std::size_t i = first; i < recent.size(); ++i) {
      recent_json.push_back(obs::rt::trace_to_json(recent[i]));
    }
    sample.set("recent", std::move(recent_json));
    Json shame_json = Json::array();
    const std::vector<obs::rt::RequestTrace> shame =
        obs::rt::FlightRecorder::instance().shame();
    const std::size_t shame_first = shame.size() > 5 ? shame.size() - 5 : 0;
    for (std::size_t i = shame_first; i < shame.size(); ++i) {
      shame_json.push_back(obs::rt::trace_to_json(shame[i]));
    }
    sample.set("shame", std::move(shame_json));
    report.set("tracez_sample", std::move(sample));
  }

  // Counter snapshot now: everything so far is a fixed request stream, while
  // the overload phase below sheds (and therefore evaluates) a
  // timing-dependent subset.
  report.set("metrics", metrics_to_json(filtered_snapshot()));

  // ------------------------------------------------------------ 3. overload
  std::cout << "--- overload: >= 2x sustainable against watermark 1 ---\n";
  {
    const double offered = std::max(2.0 * sustainable_rps, 1000.0);
    std::vector<std::string> cold;
    for (std::uint64_t i = 0; i < 300; ++i) cold.push_back(spec_body(10000 + i));
    wire::ServerOptions options;
    options.queue_high_watermark = 1;
    const LoadResult r = run_load_point(cold, offered, 1, options);
    check(r.completed == r.requests, "overload phase answered every request");
    check(r.overloads > 0, "overload phase shed explicitly");
    check(r.overloads < r.requests, "overload phase still evaluated some requests");
    check(r.errors == 0, "sheds are overloads, not errors");
    std::cout << "offered " << fmt_double(offered, 0) << " rps -> "
              << r.overloads << "/" << r.requests << " shed, "
              << (r.requests - r.overloads - r.cached) << " evaluated, p99 "
              << fmt_double(r.p99_us, 1) << " us\n\n";
    Json j = load_result_json(r);
    j.set("offered_rps", Json::number(offered));
    report.set("overload", std::move(j));
  }

  // --------------------------------------------------------------- 4. drain
  std::cout << "--- drain with evaluations in flight ---\n";
  {
    svc::Service service(svc::ServiceOptions{2, 512});
    wire::ServerOptions options;
    options.workers = 2;
    wire::Server server(service, options);
    server.start();
    wire::Client client;
    client.connect("127.0.0.1", server.port());
    const std::size_t kInFlight = 12;
    for (std::uint64_t i = 0; i < kInFlight; ++i) client.send(spec_body(20000 + i));
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    const auto drain_start = Clock::now();
    server.drain();
    const double drain_secs = seconds_since(drain_start);
    std::size_t answered = 0;
    bool clean_eof = false;
    try {
      while (client.recv().has_value()) ++answered;
      clean_eof = true;
    } catch (const wire::WireError&) {
    }
    check(clean_eof, "drain closes the stream cleanly (no truncated frame)");
    check(answered <= kInFlight, "drain answers at most what was sent");
    check(server.queue_depth() == 0, "drain leaves no queued evaluations");
    std::cout << "drained in " << fmt_double(drain_secs * 1000.0, 1) << " ms, "
              << answered << "/" << kInFlight << " admitted requests answered\n\n";
    Json j = Json::object();
    j.set("sent", Json::number(static_cast<std::int64_t>(kInFlight)));
    j.set("answered", Json::number(static_cast<std::int64_t>(answered)));
    j.set("drain_seconds", Json::number(drain_secs));
    j.set("clean_eof", Json::boolean(clean_eof));
    report.set("drain", std::move(j));
  }

  Json checks = Json::object();
  checks.set("failed", Json::number(static_cast<std::int64_t>(failures)));
  report.set("checks", std::move(checks));

  std::ofstream out(out_path);
  out << report.dump(2) << '\n';
  out.close();
  if (!out) {
    std::cerr << "error: could not write report to " << out_path << '\n';
    return 1;
  }
  std::cout << "report written to " << out_path << '\n';

  if (failures > 0) {
    std::cerr << failures << " check(s) FAILED\n";
    return 1;
  }
  std::cout << "all checks passed\n";
  return 0;
}
