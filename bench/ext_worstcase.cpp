// E7 — extended-version worst-case claim (§6, last paragraph): congestion-
// aware routing with macro-switch demands can leave some flows' rates
// arbitrarily below their macro-switch rates on adversarial inputs.
//
// Runs ECMP, greedy and local-search on the Theorem 4.3 starvation instance
// for growing n: the minimum per-flow rate ratio tracks ~1/n for every
// algorithm — the degradation is structural (Theorem 4.2), not an algorithm
// artifact.
#include <iostream>

#include "core/adversarial.hpp"
#include "fairness/waterfill.hpp"
#include "routing/ecmp.hpp"
#include "routing/greedy.hpp"
#include "routing/local_search.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace closfair;

namespace {

double min_ratio(const Allocation<Rational>& clos, const std::vector<Rational>& macro) {
  double worst = 1.0;
  for (FlowIndex f = 0; f < clos.size(); ++f) {
    if (macro[f].is_zero()) continue;
    worst = std::min(worst, (clos.rate(f) / macro[f]).to_double());
  }
  return worst;
}

}  // namespace

int main() {
  std::cout << "=== E7: adversarial inputs — min rate ratio collapses as 1/n ===\n\n";

  TextTable table({"n", "1/n", "ecmp (best of 5)", "greedy", "local-search",
                   "paper witness"});
  for (int n : {3, 4, 5, 6, 8}) {
    const AdversarialInstance inst = theorem_4_3_instance(n);
    const ClosNetwork net = ClosNetwork::paper(n);
    const FlowSet flows = instantiate(net, inst.flows);

    std::vector<double> demands;
    demands.reserve(flows.size());
    for (const Rational& r : inst.macro_rates) demands.push_back(r.to_double());

    // ECMP: best of 5 seeds (random routing can only do worse on average).
    double ecmp_best = 0.0;
    for (int seed = 0; seed < 5; ++seed) {
      Rng rng(static_cast<std::uint64_t>(seed) * 17 + 3);
      const auto alloc =
          max_min_fair<Rational>(net, flows, ecmp_routing(net, flows, rng));
      ecmp_best = std::max(ecmp_best, min_ratio(alloc, inst.macro_rates));
    }

    const MiddleAssignment greedy = greedy_routing(net, flows, demands);
    const auto greedy_alloc = max_min_fair<Rational>(net, flows, greedy);

    const MiddleAssignment ls = congestion_local_search(net, flows, demands, greedy);
    const auto ls_alloc = max_min_fair<Rational>(net, flows, ls);

    const auto witness_alloc = max_min_fair<Rational>(net, flows, *inst.witness);

    table.add_row({std::to_string(n), fmt_double(1.0 / n, 3), fmt_double(ecmp_best, 3),
                   fmt_double(min_ratio(greedy_alloc, inst.macro_rates), 3),
                   fmt_double(min_ratio(ls_alloc, inst.macro_rates), 3),
                   fmt_double(min_ratio(witness_alloc, inst.macro_rates), 3)});
  }
  std::cout << table << '\n';

  std::cout << "paper shape: Theorem 4.2 proves the macro rates cannot be routed, so\n"
               "some flow must fall below its macro rate on this family. The *fairest*\n"
               "objective falls hardest: lex-max-min fairness (the witness column)\n"
               "starves the type 3 flow to exactly 1/n, because the lexicographic\n"
               "order prefers upholding many small rates over one large one — the\n"
               "heart of R2. Congestion-aware heuristics spread the damage instead\n"
               "(higher min ratio), but their sorted vectors are still lex-dominated\n"
               "by the witness; and ECMP degrades without structure.\n";
  return 0;
}
