// verify_paper — the paper, re-proven by computation, in one run.
//
// Executes every check the reproduction stands on and prints one PASS/FAIL
// line per claim. Exit code 0 iff everything passed. This is the binary to
// run first; the fig*/ext* benches then show each result quantitatively.
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "core/adversarial.hpp"
#include "core/analysis.hpp"
#include "core/proofs.hpp"
#include "core/theorems.hpp"
#include "fairness/bottleneck.hpp"
#include "fairness/waterfill.hpp"
#include "lp/maxmin_lp.hpp"
#include "lp/splittable.hpp"
#include "routing/doom_switch.hpp"
#include "routing/ecmp.hpp"
#include "routing/exhaustive.hpp"
#include "routing/replication.hpp"
#include "util/rng.hpp"
#include "workload/stochastic.hpp"

using namespace closfair;

namespace {

int failures = 0;

void check(const std::string& claim, bool ok) {
  std::cout << (ok ? "  PASS  " : "  FAIL  ") << claim << '\n';
  if (!ok) ++failures;
}

}  // namespace

int main() {
  std::cout << "verifying: Impossibility Results for Data-Center Routing with\n"
               "Congestion Control and Unsplittable Flows (PODC 2024)\n\n";

  std::cout << "[model machinery]\n";
  {
    // Water-filling == iterative LP == bottleneck property, on random input.
    bool agree = true;
    bool certified = true;
    Rng rng(1);
    for (int trial = 0; trial < 10; ++trial) {
      const ClosNetwork net = ClosNetwork::paper(2 + static_cast<int>(rng.next_below(2)));
      const FlowSet flows = instantiate(
          net, uniform_random(Fabric{net.num_tors(), net.servers_per_tor()},
                              1 + rng.next_below(10), rng));
      const Routing routing = expand_routing(net, flows, ecmp_routing(net, flows, rng));
      const auto wf = max_min_fair<Rational>(net.topology(), flows, routing);
      agree &= wf.rates() == max_min_fair_lp<Rational>(net.topology(), flows, routing).rates();
      certified &= is_max_min_fair(net.topology(), routing, wf);
    }
    check("water-filling == exact LP oracle (10 random instances)", agree);
    check("allocations certified by the bottleneck property (Lemma 2.2)", certified);
  }

  std::cout << "\n[Example 2.3 / Figure 1]\n";
  {
    const Example23 ex = example_2_3();
    const ClosNetwork net = ClosNetwork::paper(2);
    const MacroSwitch ms = MacroSwitch::paper(2);
    const FlowSet flows = instantiate(net, ex.instance.flows);
    const auto macro = max_min_fair<Rational>(ms, instantiate(ms, ex.instance.flows));
    check("macro-switch rates match the paper",
          macro.rates() == ex.instance.macro_rates);
    check("routing A and B rates match the paper",
          max_min_fair<Rational>(net, flows, ex.routing_a).rates() == ex.rates_a &&
              max_min_fair<Rational>(net, flows, ex.routing_b).rates() == ex.rates_b);
    const auto lex = lex_max_min_exhaustive(net, flows);
    check("routing A is lex-max-min (verified by full enumeration)",
          lex.alloc.sorted() == Allocation<Rational>{ex.rates_a}.sorted());
  }

  std::cout << "\n[R1 / Theorem 3.4]\n";
  {
    const MacroSwitch ms = MacroSwitch::paper(1);
    bool family_ok = true;
    for (int k : {1, 4, 64, 1024}) {
      const auto a = analyze_macro(ms, instantiate(ms, theorem_3_4_instance(1, k).flows));
      family_ok &= a.price_of_fairness == predict_theorem_3_4(k).fairness_ratio;
    }
    check("adversarial family: T^MmF/T^MT == (1 + 1/(k+1))/2 exactly", family_ok);

    bool bound_ok = true;
    bool proof_ok = true;
    Rng rng(2);
    for (int trial = 0; trial < 10; ++trial) {
      const MacroSwitch msn = MacroSwitch::paper(1 + static_cast<int>(rng.next_below(3)));
      const FlowSet flows = instantiate(
          msn, uniform_random(Fabric{msn.num_tors(), msn.servers_per_tor()},
                              1 + rng.next_below(24), rng));
      const auto a = analyze_macro(msn, flows);
      bound_ok &= a.t_maxmin * Rational{2} >= a.t_max_throughput;
      const auto replay = replay_theorem_3_4(msn, flows);
      proof_ok &= replay.bottleneck_step_holds && replay.max_step_holds &&
                  replay.half_step_holds && replay.conclusion_holds;
    }
    check("T^MmF >= 1/2 T^MT on random instances", bound_ok);
    check("the proof's inequality chain replays step-by-step", proof_ok);
  }

  std::cout << "\n[R2 / Theorems 4.2 + 4.3]\n";
  {
    const AdversarialInstance t42 = theorem_4_2_instance(3);
    const ClosNetwork net = ClosNetwork::paper(3);
    const MacroSwitch ms = MacroSwitch::paper(3);
    check("Claim 4.5: Equation 1 has exactly the two posited solutions (n=3..8)", [&] {
      for (int n = 3; n <= 8; ++n) {
        const auto sols = replay_claim_4_5(n);
        if (sols.size() != 2 || sols[0].x != 0 || sols[1].y != 0) return false;
      }
      return true;
    }());
    const auto rep = find_feasible_routing(net, instantiate(net, t42.flows),
                                           t42.macro_rates);
    check("Theorem 4.2: macro rates unroutable (proven by exhaustive search, n=3)",
          !rep.feasible);
    const auto split = splittable_max_min(net, ms, t42.flows);
    check("...yet splittably routable (LP witness) — unsplittability is the culprit",
          split.rates.rates() == t42.macro_rates);

    bool starvation_ok = true;
    for (int n : {3, 4, 5, 6}) {
      const AdversarialInstance t43 = theorem_4_3_instance(n);
      const ClosNetwork cn = ClosNetwork::paper(n);
      const FlowSet flows = instantiate(cn, t43.flows);
      const auto alloc = max_min_fair<Rational>(cn, flows, *t43.witness);
      starvation_ok &= alloc.rates() == *t43.witness_rates;
      starvation_ok &=
          alloc.rate(flows.size() - 1) == predict_theorem_4_3(n).type3_clos_rate;
    }
    check("Theorem 4.3: lex-max-min rates starve the type 3 flow to exactly 1/n",
          starvation_ok);
  }

  std::cout << "\n[R3 / Theorem 5.4]\n";
  {
    bool doom_ok = true;
    for (int n : {5, 7, 9}) {
      for (int k : {1, 4, 16}) {
        const AdversarialInstance inst = theorem_5_4_instance(n, k);
        const ClosNetwork net = ClosNetwork::paper(n);
        const MacroSwitch ms = MacroSwitch::paper(n);
        const FlowSet flows = instantiate(net, inst.flows);
        const auto macro = max_min_fair<Rational>(ms, instantiate(ms, inst.flows));
        const auto alloc =
            max_min_fair<Rational>(net, flows, doom_switch(net, flows).middles);
        const auto pred = predict_theorem_5_4(n, k);
        doom_ok &= alloc.throughput() == pred.doom_throughput;
        doom_ok &= alloc.throughput() / macro.throughput() == pred.gain;
        doom_ok &= alloc.throughput() <= Rational{2} * macro.throughput();
      }
    }
    check("Doom-Switch achieves gain 2(1-eps) exactly; never exceeds 2 T^MmF", doom_ok);

    bool upper_ok = true;
    Rng rng(3);
    for (int trial = 0; trial < 10; ++trial) {
      const int n = 2 + static_cast<int>(rng.next_below(3));
      const ClosNetwork net = ClosNetwork::paper(n);
      const MacroSwitch ms = MacroSwitch::paper(n);
      const FlowCollection specs =
          uniform_random(Fabric{2 * n, n}, 1 + rng.next_below(30), rng);
      const FlowSet flows = instantiate(net, specs);
      const auto macro = max_min_fair<Rational>(ms, instantiate(ms, specs));
      const auto alloc =
          max_min_fair<Rational>(net, flows, ecmp_routing(net, flows, rng));
      upper_ok &= alloc.throughput() <= Rational{2} * macro.throughput();
      upper_ok &= lex_compare_sorted(alloc, macro) != std::strong_ordering::greater;
    }
    check("every routing: throughput <= 2 T^MmF and sorted vector <=lex macro's",
          upper_ok);
  }

  std::cout << '\n'
            << (failures == 0 ? "ALL CLAIMS VERIFIED" : "FAILURES DETECTED") << " ("
            << failures << " failure(s))\n";
  return failures == 0 ? 0 : 1;
}
