// E1 — Figure 1 / Example 2.3 reproduction.
//
// Prints the max-min fair allocation in MS_2, the two Clos routings the
// paper walks through (re-assigning the contested type 1 flow between M_1
// and M_2), and the exhaustively-verified lex-max-min optimum, next to the
// paper's stated rate vectors.
#include <iostream>

#include "core/adversarial.hpp"
#include "fairness/waterfill.hpp"
#include "routing/exhaustive.hpp"
#include "util/table.hpp"

using namespace closfair;

int main() {
  std::cout << "=== E1: Example 2.3 / Figure 1 — flows in C_2 and MS_2 ===\n\n";

  const Example23 ex = example_2_3();
  const ClosNetwork net = ClosNetwork::paper(2);
  const MacroSwitch ms = MacroSwitch::paper(2);
  const FlowSet clos_flows = instantiate(net, ex.instance.flows);
  const FlowSet macro_flows = instantiate(ms, ex.instance.flows);

  const auto macro = max_min_fair<Rational>(ms, macro_flows);
  const auto alloc_a = max_min_fair<Rational>(net, clos_flows, ex.routing_a);
  const auto alloc_b = max_min_fair<Rational>(net, clos_flows, ex.routing_b);
  const auto lex = lex_max_min_exhaustive(net, clos_flows);

  TextTable table({"allocation", "sorted vector (measured)", "paper"});
  table.add_row({"macro-switch a^MmF", format_sorted(macro),
                 "[1/3 x3, 2/3 x2, 1]"});
  table.add_row({"Clos routing A (contested flow -> M_1)", format_sorted(alloc_a),
                 "[1/3 x3, 2/3 x3]"});
  table.add_row({"Clos routing B (contested flow -> M_2)", format_sorted(alloc_b),
                 "[1/3 x4, 2/3, 1]"});
  table.add_row({"Clos lex-max-min (exhaustive)", format_sorted(lex.alloc),
                 "(>= routing A)"});
  std::cout << table << '\n';

  std::cout << "per-flow rates, flow order = [3x type1, 2x type2, type3]:\n";
  TextTable rates({"flow", "type", "macro", "routing A", "routing B"});
  for (FlowIndex f = 0; f < clos_flows.size(); ++f) {
    rates.add_row({net.topology().node(clos_flows[f].src).name + " -> " +
                       net.topology().node(clos_flows[f].dst).name,
                   ex.instance.labels[f], macro.rate(f).to_string(),
                   alloc_a.rate(f).to_string(), alloc_b.rate(f).to_string()});
  }
  std::cout << rates << '\n';

  const bool a_beats_b =
      lex_compare_sorted(alloc_a, alloc_b) == std::strong_ordering::greater;
  const bool macro_beats_a =
      lex_compare_sorted(macro, alloc_a) == std::strong_ordering::greater;
  std::cout << "routing A >lex routing B: " << (a_beats_b ? "yes" : "NO")
            << "   (paper: yes)\n";
  std::cout << "macro >lex routing A:     " << (macro_beats_a ? "yes" : "NO")
            << "   (paper: yes)\n";
  std::cout << "lex-max-min == routing A vector: "
            << (lex.alloc.sorted() == alloc_a.sorted() ? "yes" : "NO")
            << "   (exhaustive over " << lex.routings_evaluated << " routings)\n";
  return 0;
}
