// Machine-readable perf report for the exhaustive-search engine.
//
//   $ ./perf_report [OUT.json] [--metrics METRICS.json] [--trace TRACE.jsonl]
//
// Runs the lex-max-min search on a fixed C_4 / 8-flow instance under every
// engine configuration (full odometer, pinned odometer, canonical, canonical
// parallel), cross-checks that all configurations return the same lex-optimal
// sorted vector, and emits BENCH_search.json (path overridable via the
// positional argument) so future PRs can track the perf trajectory: waterfill
// invocations, full-space coverage, wall seconds, the canonical-reduction
// ratios, and the obs registry snapshot (counters/gauges/histograms) under a
// "metrics" key. Exits non-zero if any cross-check fails — the binary doubles
// as a regression test. When the output file does not exist yet, the run is a
// first-run baseline: the canonical-reduction gate is reported but not
// enforced, so a fresh checkout can seed its own BENCH_search.json.
//
// --metrics additionally writes the snapshot alone to its own file;
// --trace streams Chrome-trace JSONL spans (see docs/OBSERVABILITY.md).
#include <chrono>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "flow/allocation.hpp"
#include "io/json_export.hpp"
#include "obs/obs.hpp"
#include "obs/trace.hpp"
#include "routing/exhaustive.hpp"
#include "routing/search_engine.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "workload/stochastic.hpp"

using namespace closfair;

namespace {

struct LexConfig {
  const char* name;
  bool canonical;
  bool pin_first;
  unsigned threads;
  bool force_fallback = false;
};

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_search.json";
  std::string metrics_path;
  std::string trace_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << arg << '\n';
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--metrics") {
      metrics_path = next();
    } else if (arg == "--trace") {
      trace_path = next();
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "usage: perf_report [OUT.json] [--metrics METRICS.json]"
                   " [--trace TRACE.jsonl]\n";
      return 2;
    } else {
      out_path = arg;
    }
  }
  // Baseline mode: no prior report at out_path means there is nothing to
  // regress against, so the canonical-reduction gate is advisory this run.
  const bool baseline = !std::ifstream(out_path).good();

  obs::Registry::instance().reset();
  if (!trace_path.empty() && !obs::start_trace(trace_path)) {
    std::cerr << "error: could not open trace file " << trace_path << '\n';
    return 1;
  }

  constexpr int kMiddles = 4;
  constexpr std::size_t kFlows = 8;
  constexpr std::uint64_t kSeed = 101;

  const ClosNetwork net = ClosNetwork::paper(kMiddles);
  Rng rng(kSeed);
  const FlowSet flows = instantiate(
      net, uniform_random(Fabric{net.num_tors(), net.servers_per_tor()}, kFlows, rng));

  const LexConfig configs[] = {
      {"odometer_full", false, false, 1},
      {"odometer_pinned", false, true, 1},
      {"canonical", true, true, 1},
      {"canonical_2_threads", true, true, 2},
      {"canonical_8_threads", true, true, 8},
      // Same canonical search with the water-fill fast path disabled: its
      // sorted vector feeds the same identity cross-check, so a fast-path
      // divergence fails the report.
      {"canonical_fallback", true, true, 1, true},
  };

  Json lex_runs = Json::array();
  TextTable table({"config", "waterfills", "routings covered", "seconds"});
  std::vector<Rational> reference_sorted;
  std::uint64_t odometer_full_waterfills = 0;
  std::uint64_t odometer_pinned_waterfills = 0;
  std::uint64_t canonical_waterfills = 0;
  bool sorted_identical = true;

  for (const LexConfig& config : configs) {
    ExhaustiveOptions options;
    options.exploit_middle_symmetry = config.canonical;
    options.fix_first_flow = config.pin_first;
    options.num_threads = config.threads;
    options.force_waterfill_fallback = config.force_fallback;
    const auto start = std::chrono::steady_clock::now();
    const auto result = lex_max_min_exhaustive(net, flows, options);
    const double secs = seconds_since(start);

    if (reference_sorted.empty()) reference_sorted = result.alloc.sorted();
    if (result.alloc.sorted() != reference_sorted) sorted_identical = false;
    if (std::string{config.name} == "odometer_full") {
      odometer_full_waterfills = result.waterfill_invocations;
    } else if (std::string{config.name} == "odometer_pinned") {
      odometer_pinned_waterfills = result.waterfill_invocations;
    } else if (std::string{config.name} == "canonical") {
      canonical_waterfills = result.waterfill_invocations;
    }

    Json run = Json::object();
    run.set("config", Json::string(config.name));
    run.set("waterfill_invocations",
            Json::number(static_cast<std::int64_t>(result.waterfill_invocations)));
    run.set("routings_evaluated",
            Json::number(static_cast<std::int64_t>(result.routings_evaluated)));
    run.set("seconds", Json::number(secs));
    run.set("sorted", Json::string(format_sorted(result.alloc)));
    lex_runs.push_back(std::move(run));
    table.add_row({config.name, std::to_string(result.waterfill_invocations),
                   std::to_string(result.routings_evaluated), fmt_double(secs, 4)});
  }

  // Throughput search: canonical + sum-of-capacities prune vs plain odometer.
  Json tput = Json::object();
  bool throughput_identical = true;
  {
    ExhaustiveOptions odometer;
    odometer.exploit_middle_symmetry = false;
    odometer.prune_throughput_bound = false;
    auto start = std::chrono::steady_clock::now();
    const auto full = throughput_max_min_exhaustive(net, flows, odometer);
    const double full_secs = seconds_since(start);
    start = std::chrono::steady_clock::now();
    const auto canon = throughput_max_min_exhaustive(net, flows);
    const double canon_secs = seconds_since(start);
    throughput_identical = full.alloc.throughput() == canon.alloc.throughput();
    tput.set("odometer_waterfills",
             Json::number(static_cast<std::int64_t>(full.waterfill_invocations)));
    tput.set("odometer_seconds", Json::number(full_secs));
    tput.set("canonical_pruned_waterfills",
             Json::number(static_cast<std::int64_t>(canon.waterfill_invocations)));
    tput.set("canonical_pruned_seconds", Json::number(canon_secs));
    tput.set("optimal_throughput", Json::string(full.alloc.throughput().to_string()));
    tput.set("throughput_identical", Json::boolean(throughput_identical));
  }

  // Water-fill core throughput: the same workspace evaluates a fixed
  // 64-assignment cycle on the fast path and on the forced Rational
  // fallback. Call counts are fixed (not time-based) so the embedded
  // waterfill.* counters stay deterministic across machines; the speedup
  // ratio is the acceptance gate for the int64 fixed-denominator engine.
  Json wf_tput = Json::object();
  double wf_speedup = 0.0;
  bool wf_rates_identical = true;
  {
    WaterfillWorkspace workspace;
    workspace.bind(net, flows);
    Rng cycle_rng(202);
    std::vector<MiddleAssignment> cycle;
    for (int c = 0; c < 64; ++c) {
      MiddleAssignment middles(flows.size());
      for (int& m : middles) m = 1 + static_cast<int>(cycle_rng.next_below(kMiddles));
      cycle.push_back(std::move(middles));
    }
    // Byte-identity across engines on every cycle entry first.
    std::vector<std::vector<Rational>> fast_rates;
    fast_rates.reserve(cycle.size());
    for (const MiddleAssignment& middles : cycle) {
      fast_rates.push_back(workspace.max_min_rates(middles));
    }
    workspace.set_force_fallback(true);
    for (std::size_t c = 0; c < cycle.size(); ++c) {
      if (workspace.max_min_rates(cycle[c]) != fast_rates[c]) wf_rates_identical = false;
    }
    workspace.set_force_fallback(false);

    // Best-of-3 timing windows: a scheduler hiccup inflates one window, not
    // the minimum, so the speedup gate stays stable on loaded machines.
    constexpr int kFastPasses = 1200;
    constexpr int kFallbackPasses = 200;
    constexpr int kReps = 3;
    const auto timed_passes = [&](int passes) {
      double best = std::numeric_limits<double>::infinity();
      for (int rep = 0; rep < kReps; ++rep) {
        const auto start = std::chrono::steady_clock::now();
        for (int pass = 0; pass < passes; ++pass) {
          for (const MiddleAssignment& middles : cycle) {
            (void)workspace.max_min_rates(middles);
          }
        }
        best = std::min(best, seconds_since(start));
      }
      return best;
    };
    const double fast_secs = timed_passes(kFastPasses);
    workspace.set_force_fallback(true);
    const double fallback_secs = timed_passes(kFallbackPasses);

    const double fast_cps = kFastPasses * 64 / fast_secs;
    const double fallback_cps = kFallbackPasses * 64 / fallback_secs;
    wf_speedup = fallback_cps > 0 ? fast_cps / fallback_cps : 0.0;
    wf_tput.set("fast_calls_per_sec", Json::number(fast_cps));
    wf_tput.set("fallback_calls_per_sec", Json::number(fallback_cps));
    wf_tput.set("speedup", Json::number(wf_speedup));
    wf_tput.set("rates_identical", Json::boolean(wf_rates_identical));
  }

  const double full_ratio = canonical_waterfills == 0
                                ? 0.0
                                : static_cast<double>(odometer_full_waterfills) /
                                      static_cast<double>(canonical_waterfills);
  const double pinned_ratio = canonical_waterfills == 0
                                  ? 0.0
                                  : static_cast<double>(odometer_pinned_waterfills) /
                                        static_cast<double>(canonical_waterfills);

  Json report = Json::object();
  report.set("bench", Json::string("search_engine"));
  Json instance = Json::object();
  instance.set("middles", Json::number(static_cast<std::int64_t>(kMiddles)));
  instance.set("flows", Json::number(static_cast<std::int64_t>(kFlows)));
  instance.set("seed", Json::number(static_cast<std::int64_t>(kSeed)));
  report.set("instance", std::move(instance));
  report.set("lex_runs", std::move(lex_runs));
  report.set("throughput", std::move(tput));
  report.set("waterfill_throughput", std::move(wf_tput));
  Json checks = Json::object();
  checks.set("sorted_vectors_identical", Json::boolean(sorted_identical));
  checks.set("waterfill_rates_identical", Json::boolean(wf_rates_identical));
  checks.set("waterfill_fast_speedup", Json::number(wf_speedup));
  checks.set("waterfill_reduction_vs_full_odometer", Json::number(full_ratio));
  checks.set("waterfill_reduction_vs_pinned_odometer", Json::number(pinned_ratio));
  checks.set("canonical_classes",
             Json::number(static_cast<std::int64_t>(canonical_class_count(kMiddles, kFlows))));
  report.set("checks", std::move(checks));

  // Snapshot the obs registry accumulated across every run above and embed
  // it, so the committed BENCH_search.json carries the counter trajectory.
  obs::stop_trace();
  const obs::MetricsSnapshot snapshot = obs::Registry::instance().snapshot();
  report.set("metrics", metrics_to_json(snapshot));
  if (!metrics_path.empty()) {
    std::ofstream metrics_out(metrics_path);
    metrics_out << metrics_to_json(snapshot).dump(2) << '\n';
    metrics_out.close();
    if (!metrics_out) {
      std::cerr << "error: could not write metrics to " << metrics_path << '\n';
      return 1;
    }
  }

  std::ofstream out(out_path);
  out << report.dump(2) << '\n';
  out.close();
  if (!out) {
    std::cerr << "error: could not write report to " << out_path << '\n';
    return 1;
  }

  std::cout << "=== search-engine perf report (C_" << kMiddles << ", " << kFlows
            << " flows) ===\n\n"
            << table << '\n'
            << "canonical reduction: " << fmt_double(full_ratio, 1)
            << "x fewer water-fills than the full odometer ("
            << fmt_double(pinned_ratio, 1) << "x vs pinned)\n"
            << "lex-optimal sorted vectors identical across configs: "
            << (sorted_identical ? "yes" : "NO") << '\n'
            << "water-fill fast path: " << fmt_double(wf_speedup, 1)
            << "x the Rational fallback, rates identical: "
            << (wf_rates_identical ? "yes" : "NO") << '\n'
            << "report written to " << out_path
            << (baseline ? " (first-run baseline)" : "") << '\n';
  if (!metrics_path.empty()) std::cout << "metrics written to " << metrics_path << '\n';
  if (!trace_path.empty()) std::cout << "trace written to " << trace_path << '\n';

  if (!sorted_identical || !throughput_identical || !wf_rates_identical) return 1;
  if (full_ratio < 10.0) {
    std::cout << (baseline ? "note" : "REGRESSION")
              << ": canonical reduction below 10x\n";
    if (!baseline) return 1;
  }
  if (wf_speedup < 5.0) {
    std::cout << (baseline ? "note" : "REGRESSION")
              << ": water-fill fast path below 5x over the Rational fallback\n";
    if (!baseline) return 1;
  }
  return 0;
}
