// E8 — §7 (R1 discussion): scheduling vs congestion control in flow
// completion time terms.
//
// On the Theorem 3.4 family and on random batches, compares max-min
// congestion control (everyone transmits, rates shared fairly) against
// matching-round scheduling (maximum matchings transmit at link rate,
// everyone else waits) — the paper's suggested mechanism for recovering the
// throughput lost to fairness constraints.
#include <iostream>

#include "core/adversarial.hpp"
#include "sim/scheduler.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "workload/stochastic.hpp"

using namespace closfair;

int main() {
  std::cout << "=== E8: scheduling vs congestion control (mean FCT) ===\n\n";

  std::cout << "Theorem 3.4 family (unit-size flows, MS_1):\n";
  {
    TextTable table({"k", "congestion ctrl mean FCT", "scheduling mean FCT", "speedup",
                     "makespan cc", "makespan sched"});
    const MacroSwitch ms = MacroSwitch::paper(1);
    for (int k : {1, 2, 4, 8, 16}) {
      const AdversarialInstance inst = theorem_3_4_instance(1, k);
      const FlowSet flows = instantiate(ms, inst.flows);
      const std::vector<double> sizes(flows.size(), 1.0);
      const auto cc = batch_congestion_control(ms.topology(), flows,
                                               macro_routing(ms, flows), sizes);
      const auto sched = batch_matching_schedule(ms, flows, sizes);
      table.add_row({std::to_string(k), fmt_double(cc.mean_fct, 3),
                     fmt_double(sched.mean_fct, 3),
                     fmt_double(cc.mean_fct / sched.mean_fct, 3),
                     fmt_double(cc.max_fct, 3), fmt_double(sched.max_fct, 3)});
    }
    std::cout << table << '\n';
  }

  std::cout << "random batches (MS_4, exponential sizes, 5 seeds each);\n"
               "srpt = weighted-matching shortest-remaining-first variant:\n";
  {
    TextTable table({"workload", "cc mean FCT", "sched mean FCT", "srpt mean FCT",
                     "speedup (srpt vs cc)"});
    const int n = 4;
    const MacroSwitch ms = MacroSwitch::paper(n);
    const Fabric fabric{2 * n, n};
    struct Row {
      const char* name;
      int kind;
    };
    for (const Row& row : {Row{"uniform-48", 0}, Row{"incast-24", 1}, Row{"zipf-48", 2}}) {
      double cc_sum = 0.0;
      double sched_sum = 0.0;
      double srpt_sum = 0.0;
      double speedup_sum = 0.0;
      for (int seed = 0; seed < 5; ++seed) {
        Rng rng(static_cast<std::uint64_t>(seed) * 41 + 5);
        FlowCollection specs;
        switch (row.kind) {
          case 0: specs = uniform_random(fabric, 48, rng); break;
          case 1: specs = incast(fabric, 24, 1, 1, rng); break;
          default: specs = zipf_destinations(fabric, 48, 1.2, rng); break;
        }
        const FlowSet flows = instantiate(ms, specs);
        std::vector<double> sizes;
        sizes.reserve(flows.size());
        for (std::size_t i = 0; i < flows.size(); ++i) {
          sizes.push_back(rng.next_exponential(1.0));
        }
        const auto cc = batch_congestion_control(ms.topology(), flows,
                                                 macro_routing(ms, flows), sizes);
        const auto sched = batch_matching_schedule(ms, flows, sizes);
        const auto srpt = batch_srpt_schedule(ms, flows, sizes);
        cc_sum += cc.mean_fct;
        sched_sum += sched.mean_fct;
        srpt_sum += srpt.mean_fct;
        speedup_sum += cc.mean_fct / srpt.mean_fct;
      }
      table.add_row({row.name, fmt_double(cc_sum / 5, 3), fmt_double(sched_sum / 5, 3),
                     fmt_double(srpt_sum / 5, 3), fmt_double(speedup_sum / 5, 3)});
    }
    std::cout << table << '\n';
  }

  std::cout << "paper shape (§7, R1): delaying the type 2 flows lets type 1 flows run\n"
               "at link capacity; mean FCT improves although total work is unchanged.\n";
  return 0;
}
